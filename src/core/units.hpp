// Compile-time unit safety for every quantity the predictors consume: RTT
// T̂ in seconds, loss rate p̂ in [0,1], available bandwidth Â and throughput
// R in bits per second, MSS and windows in bytes.
//
// Each unit is a zero-overhead strong wrapper over a double — construction
// is explicit, so passing a `seconds` where a `probability` is expected (or
// swapping any two differently-united arguments) is a compile error, which
// is exactly the class of silent corruption a bare-double API invites (see
// tests/compile_fail/). Arithmetic is restricted to what the formulas need:
// same-unit sums, dimensionless scaling, and same-unit ratios. Anything
// dimensionally novel goes through a named helper (`rate_of`,
// `transfer_time`) so the 8×-bits-per-byte conversion lives in one place.
//
// Conventions (DESIGN.md "Units & contracts"):
//  - compute-layer APIs (fb_formulas, fb_predictor, probe results, path
//    configuration) trade in strong types;
//  - serialization records (epoch_measurement, CSV rows) stay suffixed raw
//    doubles (`*_bps`, `*_s`) and are re-wrapped — validated where the data
//    is untrusted — at the boundary.
#pragma once

#include <compare>
#include <stdexcept>

#include "core/contracts.hpp"

namespace tcppred::core {

/// Strong typedef over double; `Tag` only distinguishes units.
template <class Tag>
class quantity {
public:
    constexpr quantity() noexcept = default;
    constexpr explicit quantity(double v) noexcept : v_(v) {}

    [[nodiscard]] constexpr double value() const noexcept { return v_; }

    constexpr auto operator<=>(const quantity&) const noexcept = default;

    friend constexpr quantity operator+(quantity a, quantity b) noexcept {
        return quantity{a.v_ + b.v_};
    }
    friend constexpr quantity operator-(quantity a, quantity b) noexcept {
        return quantity{a.v_ - b.v_};
    }
    friend constexpr quantity operator*(quantity q, double s) noexcept {
        return quantity{q.v_ * s};
    }
    friend constexpr quantity operator*(double s, quantity q) noexcept {
        return quantity{s * q.v_};
    }
    friend constexpr quantity operator/(quantity q, double s) noexcept {
        return quantity{q.v_ / s};
    }
    /// The ratio of two same-unit quantities is dimensionless.
    friend constexpr double operator/(quantity a, quantity b) noexcept {
        return a.v_ / b.v_;
    }

private:
    double v_{0.0};
};

using seconds = quantity<struct seconds_unit>;
using bits_per_second = quantity<struct bits_per_second_unit>;
using bytes = quantity<struct bytes_unit>;

/// A probability (loss rate, smoothing weight): a double carrying the
/// invariant value ∈ [0,1]. The constructor asserts the invariant as a
/// contract (Debug / REPRO_CHECKS builds, zero overhead otherwise); use
/// `probability::checked` for untrusted inputs (CSV fields, CLI arguments),
/// which always validates and throws std::invalid_argument.
class probability {
public:
    constexpr probability() noexcept = default;
    constexpr explicit probability(double v) : v_(v) {
        TCPPRED_EXPECTS(v >= 0.0 && v <= 1.0);
    }

    /// Always-on validating factory for data crossing a trust boundary.
    [[nodiscard]] static constexpr probability checked(double v) {
        if (!(v >= 0.0 && v <= 1.0)) {
            throw std::invalid_argument("probability: value outside [0,1]");
        }
        return probability{v};
    }

    [[nodiscard]] constexpr double value() const noexcept { return v_; }

    constexpr auto operator<=>(const probability&) const noexcept = default;

private:
    double v_{0.0};
};

/// Average rate at which `amount` moves in `elapsed` (bytes → bits here,
/// nowhere else).
[[nodiscard]] constexpr bits_per_second rate_of(bytes amount, seconds elapsed) {
    TCPPRED_EXPECTS(elapsed.value() > 0.0);
    return bits_per_second{amount.value() * 8.0 / elapsed.value()};
}

/// Time to move `amount` at `rate`.
[[nodiscard]] constexpr seconds transfer_time(bytes amount, bits_per_second rate) {
    TCPPRED_EXPECTS(rate.value() > 0.0);
    return seconds{amount.value() * 8.0 / rate.value()};
}

}  // namespace tcppred::core
