// Autoregressive AR(p) one-step forecasting — the "more complex linear
// predictors (ARMA/ARIMA)" the paper deliberately leaves out because
// fitting them needs more history than applications usually have (§5, §7).
// Implemented here as the natural extension: sample autocovariances +
// Levinson-Durbin recursion refit over a sliding window, so the claim can
// be tested instead of assumed (see bench/ablation_ar).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "core/hb_predictors.hpp"

namespace tcppred::core {

/// Solve the Yule-Walker equations for AR coefficients from a series'
/// sample autocovariances using the Levinson-Durbin recursion.
/// Returns the coefficients a_1..a_p of
///   x_t - mean = sum_k a_k (x_{t-k} - mean) + e_t.
/// Exposed for unit testing. Returns an empty vector when the series is too
/// short or degenerate (zero variance).
[[nodiscard]] std::vector<double> fit_ar_coefficients(const std::vector<double>& series,
                                                      std::size_t order);

/// AR(p) one-step forecaster over a sliding history window.
///
/// The model is refit (O(window * order)) on every observation; forecasts
/// are made around the window mean, and clamped to be non-negative like the
/// other throughput forecasters. Falls back to the window mean while the
/// history is shorter than `min_fit` samples.
class ar_predictor final : public hb_predictor {
public:
    /// @param order   AR order p (>= 1)
    /// @param window  sliding window length (0 = unbounded history)
    explicit ar_predictor(std::size_t order, std::size_t window = 0);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return history_.size(); }

    [[nodiscard]] std::size_t order() const noexcept { return order_; }
    /// Coefficients of the current fit (empty before the first fit).
    [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
        return coefficients_;
    }

private:
    void refit();

    std::size_t order_;
    std::size_t window_;
    std::size_t min_fit_;
    std::deque<double> history_;
    std::vector<double> coefficients_;
    double mean_{0.0};
};

}  // namespace tcppred::core
