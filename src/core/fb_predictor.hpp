// The composite formula-based predictor of the paper (Eq. 3): PFTK on the
// a-priori RTT/loss measurements when the path is lossy, min(W/T̂, Â) when
// the a-priori probing saw no loss.
#pragma once

#include <cstddef>
#include <optional>

#include "core/fb_formulas.hpp"
#include "core/units.hpp"

namespace tcppred::core {

/// A-priori (or during-flow) path characteristics feeding the predictor.
/// Field types carry the units (core/units.hpp); construct from raw record
/// doubles only at the serialization boundary.
struct path_measurement {
    probability loss_rate{};   ///< p̂ (or p̃): fraction of probes lost
    seconds rtt{};             ///< T̂ (or T̃): mean probe RTT
    bits_per_second avail_bw{};///< Â: available bandwidth estimate
};

/// Which throughput model the lossy branch uses.
enum class fb_formula {
    square_root,  ///< Mathis et al. (Eq. 1)
    pftk,         ///< PFTK approximation (Eq. 2) — the paper's default
    pftk_full,    ///< full/revised PFTK (§4.2.9)
};

/// Which branch of Eq. 3 produced a prediction.
enum class fb_branch {
    model_based,   ///< p̂ > 0: throughput formula on (T̂, p̂)
    avail_bw,      ///< p̂ = 0 and Â < W/T̂: predict Â
    window_bound,  ///< p̂ = 0 and W/T̂ ≤ Â: predict W/T̂ (window-limited)
};

/// A prediction plus which branch made it (the paper analyzes lossy vs
/// lossless predictions separately, e.g. Fig. 2).
struct fb_prediction {
    bits_per_second throughput{};  ///< R̂
    fb_branch branch{fb_branch::model_based};
};

/// Eq. 3 of the paper. `t0` defaults to the paper's estimate
/// max(1 s, 2 T̂) when passed as 0.
[[nodiscard]] fb_prediction fb_predict(const tcp_flow_params& flow,
                                       const path_measurement& m,
                                       fb_formula formula = fb_formula::pftk,
                                       seconds t0 = seconds{0.0});

/// Graceful degradation around Eq. 3 for lossy measurement pipelines: when
/// the a-priori measurement of an epoch failed (pathload non-convergence,
/// degraded/truncated ping), fall back to the last good measurement of the
/// same path, tracking how stale it is — and refuse to predict once the
/// staleness exceeds a configurable bound (a prediction from arbitrarily
/// old inputs is worse than no prediction, cf. the sparse-data regimes of
/// Vazhkudai & Schopf and Sun et al., PAPERS.md).
struct degraded_fb_config {
    std::size_t max_staleness{3};  ///< max epochs a measurement may be reused
};

class degraded_fb_predictor {
public:
    explicit degraded_fb_predictor(tcp_flow_params flow,
                                   fb_formula formula = fb_formula::pftk,
                                   degraded_fb_config cfg = {});

    /// A prediction plus how many epochs old its inputs are (0 = fresh).
    struct outcome {
        fb_prediction pred;
        std::size_t staleness{0};
    };

    /// Advance one epoch. Pass the epoch's measurement, or nullopt when it
    /// failed. Returns nullopt when no usable measurement exists within the
    /// staleness bound.
    [[nodiscard]] std::optional<outcome> predict(
        const std::optional<path_measurement>& m);

    /// Epochs since the last good measurement (0 right after one).
    [[nodiscard]] std::size_t staleness() const noexcept { return staleness_; }
    [[nodiscard]] const degraded_fb_config& config() const noexcept { return cfg_; }

private:
    tcp_flow_params flow_;
    fb_formula formula_;
    degraded_fb_config cfg_;
    std::optional<path_measurement> last_good_;
    std::size_t staleness_{0};
};

}  // namespace tcppred::core
