// The unified predictor interface: formula-based (Eq. 3 with staleness
// fallback), the history-based family (MA/EWMA/HW/AR, with and without
// LSO), the NWS-style adaptive selector, and the hybrid FB+HB scheme all
// implement the same streaming contract, so one evaluation engine
// (analysis/evaluation.hpp) and any future serving front-end can drive any
// of them interchangeably. Instances are built from spec strings via
// core::make_predictor (predictor_registry.hpp).
//
// Streaming contract, per epoch of a (path, trace) series:
//   1. predict(inputs)  — forecast the epoch's throughput from the a-priori
//      measurement view (FB) and/or the accumulated history (HB). One call
//      per epoch: stateful implementations (the FB staleness fallback) age
//      on every call.
//   2. observe(actual) / observe_gap() — reveal the epoch's measured
//      throughput, or that the measurement failed (aborted transfer, path
//      outage). observe_maybe(x) routes NaN to observe_gap().
// reset() forgets all history; clone_empty() yields a fresh predictor of
// the same kind and parameters (the engine clones one prototype per trace).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "core/fb_predictor.hpp"
#include "core/hb_predictors.hpp"
#include "core/hybrid_predictor.hpp"

namespace tcppred::core {

/// Why a predictor did (or did not) produce a usable forecast.
enum class prediction_status {
    ok,          ///< value is a real forecast
    no_history,  ///< history-based and not enough samples yet
    unavailable, ///< inputs missing/degenerate beyond what fallbacks cover
};

/// What the forecast was computed from (the paper analyzes lossy vs
/// lossless FB predictions separately, e.g. Fig. 2).
enum class prediction_source {
    history,       ///< HB forecast from past observations
    model_based,   ///< FB lossy branch: throughput formula on (T̂, p̂)
    avail_bw,      ///< FB lossless branch: predict Â
    window_bound,  ///< FB lossless branch: predict W/T̂ (window-limited)
    blended,       ///< hybrid FB+HB mixture
};

/// Provenance of a prediction's inputs.
struct prediction_inputs {
    prediction_source source{prediction_source::history};
    /// History samples behind the forecast (0 for pure FB).
    std::size_t history_samples{0};
    /// Epochs since the inputs were freshly measured: 0 = this epoch's
    /// measurement, >0 = the FB staleness fallback substituted an older one.
    std::size_t staleness{0};
};

/// One forecast plus its status and provenance.
struct prediction {
    double value_bps{std::numeric_limits<double>::quiet_NaN()};  ///< R̂
    prediction_status status{prediction_status::no_history};
    prediction_inputs inputs_used{};

    [[nodiscard]] bool usable() const noexcept {
        return status == prediction_status::ok;
    }
};

/// The a-priori measurement view of one epoch, as seen by predict().
///
/// Three states:
///  * valid measurement:  `measurement` set, `failed` false;
///  * failed measurement: `measurement` empty, `failed` true — the probing
///    faulted (NaN fields / fault flags); FB falls back to its last good
///    measurement within the staleness bound;
///  * absent:             `measurement` empty, `failed` false — the epoch
///    carries no usable a-priori view at all (degenerate zero-RTT record,
///    or a synthetic throughput series with no measurement side). FB skips
///    the epoch without aging its fallback state, matching the legacy
///    zero-RTT guard.
struct epoch_inputs {
    std::optional<path_measurement> measurement{};
    bool failed{false};

    [[nodiscard]] static epoch_inputs valid(path_measurement m) {
        return epoch_inputs{m, false};
    }
    [[nodiscard]] static epoch_inputs failed_measurement() {
        return epoch_inputs{std::nullopt, true};
    }
    [[nodiscard]] static epoch_inputs absent() { return epoch_inputs{}; }
};

/// The unified streaming predictor. See the file comment for the contract.
class predictor {
public:
    virtual ~predictor() = default;

    /// Forecast this epoch's throughput. One call per epoch (see file
    /// comment); implementations with fallback state age on every call.
    [[nodiscard]] virtual prediction predict(const epoch_inputs& in) = 0;

    /// Reveal the epoch's measured throughput (bits/s, a real number).
    virtual void observe(double actual_bps) = 0;
    /// Reveal that the epoch's throughput measurement is missing/unusable.
    virtual void observe_gap() = 0;
    /// Route a possibly-missing sample: NaN marks a failed measurement.
    void observe_maybe(double actual_bps) {
        if (std::isnan(actual_bps)) {
            observe_gap();
        } else {
            observe(actual_bps);
        }
    }

    /// Forget all accumulated history and fallback state.
    virtual void reset() = 0;
    /// A fresh predictor of the same kind and parameters.
    [[nodiscard]] virtual std::unique_ptr<predictor> clone_empty() const = 0;
    /// Canonical spec string, e.g. "fb:pftk", "10-MA-LSO", "0.8-HW".
    [[nodiscard]] virtual std::string name() const = 0;

    /// Minimum series length (in epochs) a trace needs for this predictor's
    /// evaluation to be meaningful. History-based predictors return 3 — the
    /// paper's §6.1 convention of skipping traces too short to forecast;
    /// formula-based prediction works from the first epoch.
    [[nodiscard]] virtual std::size_t min_trace_length() const { return 1; }
};

/// Adapter: any one-step-ahead series forecaster (hb_predictors.hpp) as a
/// unified predictor. predict() ignores the measurement view and forecasts
/// from observed history alone.
class history_predictor final : public predictor {
public:
    explicit history_predictor(std::unique_ptr<hb_predictor> inner);

    [[nodiscard]] prediction predict(const epoch_inputs& in) override;
    void observe(double actual_bps) override;
    void observe_gap() override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t min_trace_length() const override { return 3; }

    [[nodiscard]] const hb_predictor& inner() const noexcept { return *inner_; }

private:
    std::unique_ptr<hb_predictor> inner_;
};

/// Which throughput estimate the formula predictor uses for an epoch.
enum class formula_kind {
    square_root,  ///< Mathis et al. (Eq. 1) on the lossy branch
    pftk,         ///< PFTK approximation (Eq. 2) — the paper's default
    pftk_full,    ///< full/revised PFTK (§4.2.9)
    min_wa,       ///< always min(W/T̂, Â): the lossless branch of Eq. 3 alone
};

/// The formula-based predictor of Eq. 3 behind the unified interface,
/// including the measurement-fault staleness fallback
/// (core::degraded_fb_predictor). observe()/observe_gap() are no-ops: FB
/// prediction never looks at past throughput.
class formula_predictor final : public predictor {
public:
    formula_predictor(formula_kind kind, tcp_flow_params flow,
                      degraded_fb_config degraded = {});

    [[nodiscard]] prediction predict(const epoch_inputs& in) override;
    void observe(double) override {}
    void observe_gap() override {}
    void reset() override;
    [[nodiscard]] std::unique_ptr<predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] formula_kind kind() const noexcept { return kind_; }
    [[nodiscard]] const tcp_flow_params& flow() const noexcept { return flow_; }

private:
    formula_kind kind_;
    tcp_flow_params flow_;
    degraded_fb_config degraded_cfg_;
    degraded_fb_predictor degraded_;
};

/// The hybrid FB+HB scheme (§7 future work) behind the unified interface:
/// an FB estimate computed from the epoch's measurement view (with the same
/// staleness fallback as formula_predictor) blended with an HB forecast,
/// weighted by how much history exists (core::hybrid_predictor).
class blended_predictor final : public predictor {
public:
    blended_predictor(std::unique_ptr<hb_predictor> history, double fb_weight_samples,
                      formula_kind kind, tcp_flow_params flow,
                      degraded_fb_config degraded = {});

    [[nodiscard]] prediction predict(const epoch_inputs& in) override;
    void observe(double actual_bps) override;
    void observe_gap() override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] const hybrid_predictor& blend() const noexcept { return blend_; }

private:
    double fb_weight_samples_;
    formula_kind kind_;
    tcp_flow_params flow_;
    degraded_fb_config degraded_cfg_;
    degraded_fb_predictor degraded_;
    hybrid_predictor blend_;
    std::size_t gaps_{0};
};

}  // namespace tcppred::core
