// Runtime contract checks for the domain invariants the paper states:
// p ∈ [0,1], T > 0, non-negative rates, scheduler event-time monotonicity,
// smoothing-weight ranges. Violations indicate a programming error, never a
// recoverable condition, so the macros throw tcppred::contract_violation
// (a std::logic_error) where tests can observe it.
//
// The checks are compiled in when TCPPRED_CHECKS is 1: that is the default
// in Debug builds (no NDEBUG) and is forced in any build type by the
// REPRO_CHECKS=ON CMake option. Release builds without REPRO_CHECKS compile
// every check out entirely; the hot paths carry zero overhead (see
// DESIGN.md "Units & contracts" for how this interacts with the §6
// determinism contract — the checks only observe values, never alter them,
// so a campaign CSV is byte-identical with checks on or off).
#pragma once

#include <stdexcept>
#include <string>

#if !defined(TCPPRED_CHECKS)
#if defined(NDEBUG)
#define TCPPRED_CHECKS 0
#else
#define TCPPRED_CHECKS 1
#endif
#endif

namespace tcppred {

/// Thrown by a violated TCPPRED_* contract when checks are enabled.
class contract_violation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw contract_violation(std::string(kind) + " violated: (" + expr + ") at " +
                             file + ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace tcppred

#if TCPPRED_CHECKS
#define TCPPRED_CONTRACT_(kind, expr)                \
    ((expr) ? static_cast<void>(0)                   \
            : ::tcppred::detail::contract_fail(kind, #expr, __FILE__, __LINE__))
#else
// The sizeof keeps the expression syntactically checked (and its operands
// "used", so -Wunused-parameter stays quiet) without ever evaluating it.
#define TCPPRED_CONTRACT_(kind, expr) \
    static_cast<void>(sizeof((expr) ? 1 : 0))
#endif

/// Precondition on a function's arguments / object state at entry.
#define TCPPRED_EXPECTS(expr) TCPPRED_CONTRACT_("precondition", expr)
/// Postcondition on a function's result / object state at exit.
#define TCPPRED_ENSURES(expr) TCPPRED_CONTRACT_("postcondition", expr)
/// Internal invariant anywhere in a function body.
#define TCPPRED_ASSERT(expr) TCPPRED_CONTRACT_("invariant", expr)
