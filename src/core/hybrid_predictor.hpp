// Hybrid FB+HB prediction — the first item on the paper's future-work list
// (§7): "examine hybrid predictors, which rely on TCP models as well as on
// recent history".
//
// The hybrid forecast blends the formula-based estimate (available from
// non-intrusive measurements even on a cold path) with the history-based
// forecast, weighting history by how much of it exists:
//
//   forecast = w * HB + (1 - w) * FB,     w = n / (n + k)
//
// where n is the usable history length and k ("fb_weight_samples") says how
// many samples of history it takes for HB to outweigh FB evenly. With no
// history the hybrid IS the FB predictor; with a long history the FB input
// only nudges it.
#pragma once

#include <cmath>
#include <memory>
#include <string>

#include "core/hb_predictors.hpp"

namespace tcppred::core {

class hybrid_predictor {
public:
    /// @param history            the HB component (takes ownership)
    /// @param fb_weight_samples  k: history length at which HB and FB have
    ///                           equal weight (must be > 0)
    explicit hybrid_predictor(std::unique_ptr<hb_predictor> history,
                              double fb_weight_samples = 3.0);

    /// Supply the latest formula-based estimate (Eq. 3 output, bits/s).
    /// May be refreshed before every predict(); stays in effect until
    /// replaced.
    void set_formula_prediction(double fb_bps);

    /// Reveal the actual throughput of the transfer that just completed.
    void observe(double actual_bps);

    /// Reveal that the transfer's throughput measurement is missing; the
    /// history component records the gap (hb_predictor::observe_gap).
    void observe_gap();

    /// The blended forecast. NaN only when there is neither history nor a
    /// formula prediction.
    [[nodiscard]] double predict() const;

    /// Current blend weight on the HB side, in [0, 1].
    [[nodiscard]] double history_weight() const;

    [[nodiscard]] const hb_predictor& history() const noexcept { return *history_; }
    [[nodiscard]] std::string name() const { return history_->name() + "+FB"; }

    /// Forget all history (e.g. after a route change); keeps the FB input.
    void reset();

private:
    std::unique_ptr<hb_predictor> history_;
    double k_;
    double fb_bps_{std::numeric_limits<double>::quiet_NaN()};
};

}  // namespace tcppred::core
