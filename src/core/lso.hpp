// The paper's LSO heuristics (§5.2): detect level shifts (restart the
// predictor from the shift point) and outliers (discard the sample) in a
// short throughput history, without fitting ARMA models.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/hb_predictors.hpp"

namespace tcppred::core {

/// LSO detection parameters. Defaults are the values the paper found to
/// work well: γ = 0.3 (level-shift median gap), ψ = 0.4 (outlier gap).
struct lso_config {
    double gamma{0.3};  ///< χ in Fig. 18: min relative gap between segment medians
    double psi{0.4};    ///< ψ: min relative gap between a sample and the median
    /// A level shift at position k needs k + 2 <= n (paper condition 3):
    /// at least this many samples at the new level before declaring a shift.
    std::size_t min_post_shift_samples{3};
};

/// Incremental LSO scanner over a time series.
///
/// Maintains the "cleaned" history: samples since the last detected level
/// shift, with detected outliers removed. Each sample keeps its original
/// series index so callers can attribute detections retrospectively
/// (needed e.g. when excluding outliers from RMSRE or segmenting a trace
/// into stationary periods for the CoV computation, §6.1.3).
class lso_filter {
public:
    explicit lso_filter(lso_config cfg = {});

    struct sample {
        std::size_t index;  ///< position in the original series
        double value;
    };

    /// Feed the next observation. Runs outlier and level-shift detection.
    void observe(double x);

    /// Cleaned history: samples since the last level shift, outliers removed.
    [[nodiscard]] const std::vector<sample>& cleaned() const noexcept { return history_; }

    /// Original indices of every sample ever flagged as an outlier.
    [[nodiscard]] const std::vector<std::size_t>& outlier_indices() const noexcept {
        return outliers_;
    }
    /// Original indices where level shifts were detected (index of the first
    /// sample of each new level).
    [[nodiscard]] const std::vector<std::size_t>& shift_indices() const noexcept {
        return shifts_;
    }
    /// Total samples observed so far.
    [[nodiscard]] std::size_t observed() const noexcept { return observed_; }
    [[nodiscard]] const lso_config& config() const noexcept { return cfg_; }

private:
    void detect_outliers();
    void detect_level_shift();

    lso_config cfg_;
    std::vector<sample> history_;
    std::vector<std::size_t> outliers_;
    std::vector<std::size_t> shifts_;
    std::size_t observed_{0};
};

/// An HB predictor wrapped with the LSO heuristics: on every observation the
/// cleaned history is re-fed to a fresh inner predictor, so outliers never
/// pollute the forecast and level shifts restart it (§5.2). Histories are
/// short (tens of samples) so the O(n) refit per step is negligible — see
/// bench/micro_predictors.
class lso_predictor final : public hb_predictor {
public:
    lso_predictor(std::unique_ptr<hb_predictor> inner, lso_config cfg = {});

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override;

    [[nodiscard]] const lso_filter& filter() const noexcept { return filter_; }

private:
    void refit();

    std::unique_ptr<hb_predictor> prototype_;
    std::unique_ptr<hb_predictor> fitted_;
    lso_filter filter_;
};

/// Retrospective LSO scan of a whole series: outlier flags and stationary
/// segment boundaries. Convenience for analyses that need the final verdict
/// for every sample (CoV weighting, error exclusion).
struct lso_scan_result {
    std::vector<bool> is_outlier;            ///< per original index
    std::vector<std::size_t> segment_starts; ///< always starts with 0
};
[[nodiscard]] lso_scan_result lso_scan(const std::vector<double>& series,
                                       lso_config cfg = {});

}  // namespace tcppred::core
