// Checked numeric parsing for every operator-facing knob: CLI flag values,
// environment variables, and daemon request fields share one strict parser,
// so "--paths foo", "REPRO_JOBS=banana" and "--jobs -3" fail loudly with a
// diagnostic naming the knob instead of silently becoming 0 (the std::atoi
// behaviour this replaces — PR 10's hardened-input sweep).
//
// Contract (mirrors predictor_spec_error): every rejection throws
// parse_error, a typed std::invalid_argument carrying the knob name and the
// offending text; tools map it to exit code 2 with the message on stderr.
// Accepted inputs parse the ENTIRE token — trailing garbage ("12x"), empty
// strings, overflow, and out-of-range values are all errors, never a
// truncated or defaulted number.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tcppred::core {

/// Thrown on any malformed or out-of-range knob value. `knob()` is the flag
/// or environment variable the value was given for (e.g. "--paths",
/// "REPRO_JOBS"); `text()` is the rejected input.
class parse_error : public std::invalid_argument {
public:
    parse_error(std::string knob, std::string text, const std::string& reason)
        : std::invalid_argument("bad value for " + knob + ": \"" + text + "\" (" +
                                reason + ")"),
          knob_(std::move(knob)),
          text_(std::move(text)) {}

    [[nodiscard]] const std::string& knob() const noexcept { return knob_; }
    [[nodiscard]] const std::string& text() const noexcept { return text_; }

private:
    std::string knob_;
    std::string text_;
};

/// Parse `text` as a decimal integer in [min, max]. Rejects empty input,
/// non-digit characters (including trailing garbage and internal spaces),
/// overflow, and values outside the range. A leading '-' is accepted
/// syntactically so "-3" is reported as out-of-range for a positive knob,
/// not as a malformed number.
[[nodiscard]] std::int64_t parse_checked_int(std::string_view knob, std::string_view text,
                                             std::int64_t min, std::int64_t max);

/// Same contract for unsigned 64-bit knobs (seeds). Rejects '-' outright.
[[nodiscard]] std::uint64_t parse_checked_u64(std::string_view knob,
                                              std::string_view text, std::uint64_t min,
                                              std::uint64_t max);

/// Parse `text` as a finite double in [min, max]. Accepts everything strtod
/// does (decimal, scientific, hexfloat — the repo's bit-exact interchange
/// format), but the whole token must parse and the result must be finite.
[[nodiscard]] double parse_checked_double(std::string_view knob, std::string_view text,
                                          double min, double max);

}  // namespace tcppred::core
