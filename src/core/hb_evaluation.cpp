#include "core/hb_evaluation.hpp"

#include <cmath>
#include <stdexcept>

#include "core/metrics.hpp"

namespace tcppred::core {

hb_evaluation evaluate_one_step(const std::vector<double>& series,
                                const hb_predictor& prototype,
                                hb_evaluation_options opts) {
    hb_evaluation out;
    auto predictor = prototype.clone_empty();

    std::vector<bool> excluded;
    if (opts.exclude_outliers) {
        excluded = lso_scan(series, opts.lso).is_outlier;
    }

    for (std::size_t i = 0; i < series.size(); ++i) {
        const double forecast = predictor->predict();
        // NaN samples are failed measurements: nothing to score the forecast
        // against, and the predictor is told about the gap rather than fed
        // the NaN (gap-aware degradation, hb_predictors.hpp).
        const bool skip = i < opts.warmup || std::isnan(forecast) ||
                          std::isnan(series[i]) ||
                          (opts.exclude_outliers && excluded[i]);
        if (!skip) {
            out.errors.push_back(relative_error(forecast, series[i]));
            out.indices.push_back(i);
        }
        predictor->observe_maybe(series[i]);
    }
    out.rmsre = rmsre(out.errors);
    return out;
}

std::vector<double> downsample(const std::vector<double>& series, std::size_t factor) {
    if (factor == 0) throw std::invalid_argument("downsample: factor must be >= 1");
    std::vector<double> out;
    out.reserve(series.size() / factor + 1);
    for (std::size_t i = 0; i < series.size(); i += factor) out.push_back(series[i]);
    return out;
}

}  // namespace tcppred::core
