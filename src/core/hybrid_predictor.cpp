#include "core/hybrid_predictor.hpp"

#include <stdexcept>

namespace tcppred::core {

hybrid_predictor::hybrid_predictor(std::unique_ptr<hb_predictor> history,
                                   double fb_weight_samples)
    : history_(std::move(history)), k_(fb_weight_samples) {
    if (!history_) throw std::invalid_argument("hybrid_predictor: null history predictor");
    if (k_ <= 0.0) throw std::invalid_argument("hybrid_predictor: k must be positive");
}

void hybrid_predictor::set_formula_prediction(double fb_bps) { fb_bps_ = fb_bps; }

void hybrid_predictor::observe(double actual_bps) { history_->observe(actual_bps); }

void hybrid_predictor::observe_gap() { history_->observe_gap(); }

double hybrid_predictor::history_weight() const {
    const double hb = history_->predict();
    if (std::isnan(hb)) return 0.0;
    const auto n = static_cast<double>(history_->history_size());
    return n / (n + k_);
}

double hybrid_predictor::predict() const {
    const double hb = history_->predict();
    const bool have_hb = !std::isnan(hb);
    const bool have_fb = !std::isnan(fb_bps_);
    if (!have_hb && !have_fb) return std::numeric_limits<double>::quiet_NaN();
    if (!have_hb) return fb_bps_;
    if (!have_fb) return hb;
    const double w = history_weight();
    return w * hb + (1.0 - w) * fb_bps_;
}

void hybrid_predictor::reset() { history_->reset(); }

}  // namespace tcppred::core
