// Seasonal (additive) Holt-Winters — the seasonal counterpart of the
// paper's non-seasonal HW (§5.1.3). Internet path load has strong diurnal
// periodicity; when the transfer history spans full days, the seasonal
// component captures it where the non-seasonal predictor must chase it as a
// trend. Provided as an extension; reduces to non-seasonal behaviour until
// two full seasons of history exist.
#pragma once

#include <cstddef>
#include <vector>

#include "core/hb_predictors.hpp"

namespace tcppred::core {

class seasonal_holt_winters final : public hb_predictor {
public:
    /// @param alpha  level gain (0,1)
    /// @param beta   trend gain (0,1)
    /// @param gamma  seasonal gain (0,1)
    /// @param period season length in samples (>= 2)
    seasonal_holt_winters(double alpha, double beta, double gamma, std::size_t period);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    [[nodiscard]] std::size_t period() const noexcept { return period_; }
    /// True once the seasonal indices are initialized (one full season seen).
    [[nodiscard]] bool seasonal_active() const noexcept { return initialized_; }

private:
    void initialize_from_first_season();

    double alpha_, beta_, gamma_;
    std::size_t period_;
    std::vector<double> first_season_;
    std::vector<double> seasonal_;  ///< additive seasonal indices, length = period
    double level_{0.0};
    double trend_{0.0};
    std::size_t seen_{0};
    bool initialized_{false};
};

}  // namespace tcppred::core
