#include "core/loss_events.hpp"

namespace tcppred::core {

double packet_loss_rate(std::span<const std::uint8_t> outcomes) {
    if (outcomes.empty()) return 0.0;
    std::size_t lost = 0;
    for (const std::uint8_t o : outcomes) lost += o == 0 ? 1 : 0;
    return static_cast<double>(lost) / static_cast<double>(outcomes.size());
}

double loss_event_rate(std::span<const std::uint8_t> outcomes) {
    if (outcomes.empty()) return 0.0;
    std::size_t events = 0;
    bool in_burst = false;
    for (const std::uint8_t o : outcomes) {
        if (o == 0) {
            if (!in_burst) {
                ++events;
                in_burst = true;
            }
        } else {
            in_burst = false;
        }
    }
    return static_cast<double>(events) / static_cast<double>(outcomes.size());
}

double mean_loss_burst_length(std::span<const std::uint8_t> outcomes) {
    std::size_t lost = 0, events = 0;
    bool in_burst = false;
    for (const std::uint8_t o : outcomes) {
        if (o == 0) {
            ++lost;
            if (!in_burst) {
                ++events;
                in_burst = true;
            }
        } else {
            in_burst = false;
        }
    }
    return events == 0 ? 0.0 : static_cast<double>(lost) / static_cast<double>(events);
}

}  // namespace tcppred::core
