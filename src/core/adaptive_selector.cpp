#include "core/adaptive_selector.hpp"

#include <cmath>
#include <stdexcept>

#include "core/lso.hpp"
#include "core/metrics.hpp"

namespace tcppred::core {

adaptive_selector::adaptive_selector(std::vector<std::unique_ptr<hb_predictor>> candidates,
                                     double score_discount)
    : discount_(score_discount) {
    if (candidates.empty()) {
        throw std::invalid_argument("adaptive_selector: need at least one candidate");
    }
    if (score_discount <= 0.0 || score_discount > 1.0) {
        throw std::invalid_argument("adaptive_selector: discount in (0,1]");
    }
    for (auto& c : candidates) {
        if (!c) throw std::invalid_argument("adaptive_selector: null candidate");
        candidates_.push_back(entry{std::move(c), 0.0, 0.0});
    }
}

void adaptive_selector::observe(double x) {
    for (auto& c : candidates_) {
        const double forecast = c.predictor->predict();
        if (!std::isnan(forecast) && x > 0.0) {
            const double e = relative_error(forecast, x);
            c.score = c.score * discount_ + e * e;
            c.weight = c.weight * discount_ + 1.0;
        }
        c.predictor->observe(x);
    }
    ++seen_;
}

std::size_t adaptive_selector::best_index() const {
    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        const auto& c = candidates_[i];
        // Unscored candidates rank behind any scored one.
        const double mean = c.weight > 0.0 ? c.score / c.weight
                                           : std::numeric_limits<double>::infinity();
        if (mean < best_score) {
            best_score = mean;
            best = i;
        }
    }
    return best;
}

std::string adaptive_selector::best_name() const {
    return candidates_[best_index()].predictor->name();
}

double adaptive_selector::predict() const {
    return candidates_[best_index()].predictor->predict();
}

void adaptive_selector::reset() {
    for (auto& c : candidates_) {
        c.predictor->reset();
        c.score = 0.0;
        c.weight = 0.0;
    }
    seen_ = 0;
}

std::unique_ptr<hb_predictor> adaptive_selector::clone_empty() const {
    std::vector<std::unique_ptr<hb_predictor>> clones;
    clones.reserve(candidates_.size());
    for (const auto& c : candidates_) clones.push_back(c.predictor->clone_empty());
    return std::make_unique<adaptive_selector>(std::move(clones), discount_);
}

std::string adaptive_selector::name() const {
    return "NWS-" + std::to_string(candidates_.size());
}

std::unique_ptr<adaptive_selector> adaptive_selector::standard() {
    std::vector<std::unique_ptr<hb_predictor>> set;
    set.push_back(std::make_unique<lso_predictor>(std::make_unique<moving_average>(5)));
    set.push_back(std::make_unique<lso_predictor>(std::make_unique<moving_average>(10)));
    set.push_back(std::make_unique<lso_predictor>(std::make_unique<ewma>(0.5)));
    set.push_back(std::make_unique<lso_predictor>(std::make_unique<holt_winters>(0.8, 0.2)));
    return std::make_unique<adaptive_selector>(std::move(set), 0.9);
}

}  // namespace tcppred::core
