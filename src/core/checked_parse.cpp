#include "core/checked_parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tcppred::core {

namespace {

[[noreturn]] void reject(std::string_view knob, std::string_view text,
                         const std::string& reason) {
    throw parse_error(std::string(knob), std::string(text), reason);
}

/// strtoll/strtoull/strtod all need a NUL-terminated buffer and an end
/// pointer check; centralize the "whole token or nothing" plumbing.
template <typename Value, typename Fn>
Value strto_whole(std::string_view knob, std::string_view text, Fn fn,
                  const char* what) {
    if (text.empty()) reject(knob, text, std::string("expected ") + what);
    // strto* skip leading whitespace; the whole-token contract does not.
    if (std::isspace(static_cast<unsigned char>(text.front()))) {
        reject(knob, text, std::string("expected ") + what);
    }
    const std::string buf(text);
    errno = 0;
    char* end = nullptr;
    const Value v = fn(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
        reject(knob, text, std::string("expected ") + what);
    }
    if (errno == ERANGE) reject(knob, text, "value overflows");
    return v;
}

std::string range_msg(const std::string& lo, const std::string& hi) {
    return "expected a value in [" + lo + ", " + hi + "]";
}

}  // namespace

std::int64_t parse_checked_int(std::string_view knob, std::string_view text,
                               std::int64_t min, std::int64_t max) {
    const long long v = strto_whole<long long>(
        knob, text, [](const char* s, char** end) { return std::strtoll(s, end, 10); },
        "an integer");
    if (v < min || v > max) {
        reject(knob, text, range_msg(std::to_string(min), std::to_string(max)));
    }
    return v;
}

std::uint64_t parse_checked_u64(std::string_view knob, std::string_view text,
                                std::uint64_t min, std::uint64_t max) {
    // strtoull silently negates "-1"; forbid the sign before parsing.
    if (!text.empty() && (text.front() == '-' || text.front() == '+')) {
        reject(knob, text, "expected an unsigned integer");
    }
    const unsigned long long v = strto_whole<unsigned long long>(
        knob, text, [](const char* s, char** end) { return std::strtoull(s, end, 10); },
        "an unsigned integer");
    if (v < min || v > max) {
        reject(knob, text, range_msg(std::to_string(min), std::to_string(max)));
    }
    return v;
}

double parse_checked_double(std::string_view knob, std::string_view text, double min,
                            double max) {
    const double v = strto_whole<double>(
        knob, text, [](const char* s, char** end) { return std::strtod(s, end); },
        "a number");
    if (!std::isfinite(v)) reject(knob, text, "expected a finite number");
    if (v < min || v > max) {
        reject(knob, text, range_msg(std::to_string(min), std::to_string(max)));
    }
    return v;
}

}  // namespace tcppred::core
