#include "core/seasonal_hw.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tcppred::core {

seasonal_holt_winters::seasonal_holt_winters(double alpha, double beta, double gamma,
                                             std::size_t period)
    : alpha_(alpha), beta_(beta), gamma_(gamma), period_(period) {
    if (alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 || gamma <= 0 || gamma >= 1) {
        throw std::invalid_argument("seasonal_hw: gains must be in (0,1)");
    }
    if (period < 2) throw std::invalid_argument("seasonal_hw: period must be >= 2");
}

void seasonal_holt_winters::initialize_from_first_season() {
    const double mean =
        std::accumulate(first_season_.begin(), first_season_.end(), 0.0) /
        static_cast<double>(period_);
    level_ = mean;
    trend_ = 0.0;
    seasonal_.resize(period_);
    for (std::size_t i = 0; i < period_; ++i) seasonal_[i] = first_season_[i] - mean;
    initialized_ = true;
}

void seasonal_holt_winters::observe(double x) {
    if (!initialized_) {
        first_season_.push_back(x);
        ++seen_;
        if (first_season_.size() == period_) initialize_from_first_season();
        return;
    }
    const std::size_t idx = seen_ % period_;
    const double prev_level = level_;
    level_ = alpha_ * (x - seasonal_[idx]) + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    seasonal_[idx] = gamma_ * (x - level_) + (1.0 - gamma_) * seasonal_[idx];
    ++seen_;
}

double seasonal_holt_winters::predict() const {
    if (seen_ == 0) return nan();
    if (!initialized_) {
        // Not a full season yet: forecast the running mean of what we have.
        return std::accumulate(first_season_.begin(), first_season_.end(), 0.0) /
               static_cast<double>(first_season_.size());
    }
    const double forecast = level_ + trend_ + seasonal_[seen_ % period_];
    if (forecast <= 0.0) return std::max(level_ * 0.05, 1e-9);
    return forecast;
}

void seasonal_holt_winters::reset() {
    first_season_.clear();
    seasonal_.clear();
    level_ = trend_ = 0.0;
    seen_ = 0;
    initialized_ = false;
}

std::unique_ptr<hb_predictor> seasonal_holt_winters::clone_empty() const {
    return std::make_unique<seasonal_holt_winters>(alpha_, beta_, gamma_, period_);
}

std::string seasonal_holt_winters::name() const {
    return "SHW-" + std::to_string(period_);
}

}  // namespace tcppred::core
