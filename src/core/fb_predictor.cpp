#include "core/fb_predictor.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcppred::core {

fb_prediction fb_predict(const tcp_flow_params& flow, const path_measurement& m,
                         fb_formula formula, double t0_s) {
    if (m.rtt_s <= 0.0) throw std::invalid_argument("fb_predict: rtt must be positive");
    if (t0_s <= 0.0) t0_s = estimate_t0(m.rtt_s);

    fb_prediction out;
    if (m.loss_rate > 0.0) {
        out.branch = fb_branch::model_based;
        switch (formula) {
            case fb_formula::square_root:
                out.throughput_bps = square_root_throughput(flow, m.rtt_s, m.loss_rate);
                break;
            case fb_formula::pftk:
                out.throughput_bps = pftk_throughput(flow, m.rtt_s, m.loss_rate, t0_s);
                break;
            case fb_formula::pftk_full:
                out.throughput_bps = pftk_full_throughput(flow, m.rtt_s, m.loss_rate, t0_s);
                break;
        }
        return out;
    }

    const double window_bound = flow.max_window_bytes * 8.0 / m.rtt_s;
    if (m.avail_bw_bps > 0.0 && m.avail_bw_bps < window_bound) {
        out.branch = fb_branch::avail_bw;
        out.throughput_bps = m.avail_bw_bps;
    } else {
        out.branch = fb_branch::window_bound;
        out.throughput_bps = window_bound;
    }
    return out;
}

}  // namespace tcppred::core
