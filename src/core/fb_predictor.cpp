#include "core/fb_predictor.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace tcppred::core {

fb_prediction fb_predict(const tcp_flow_params& flow, const path_measurement& m,
                         fb_formula formula, seconds t0) {
    TCPPRED_EXPECTS(m.rtt.value() > 0.0);
    TCPPRED_EXPECTS(m.avail_bw.value() >= 0.0);
    if (t0.value() <= 0.0) t0 = estimate_t0(m.rtt);

    fb_prediction out;
    if (m.loss_rate.value() > 0.0) {
        out.branch = fb_branch::model_based;
        switch (formula) {
            case fb_formula::square_root:
                out.throughput = square_root_throughput(flow, m.rtt, m.loss_rate);
                break;
            case fb_formula::pftk:
                out.throughput = pftk_throughput(flow, m.rtt, m.loss_rate, t0);
                break;
            case fb_formula::pftk_full:
                out.throughput = pftk_full_throughput(flow, m.rtt, m.loss_rate, t0);
                break;
        }
        return out;
    }

    const double window_bound = flow.max_window.value() * 8.0 / m.rtt.value();
    if (m.avail_bw.value() > 0.0 && m.avail_bw.value() < window_bound) {
        out.branch = fb_branch::avail_bw;
        out.throughput = m.avail_bw;
    } else {
        out.branch = fb_branch::window_bound;
        out.throughput = bits_per_second{window_bound};
    }
    return out;
}

degraded_fb_predictor::degraded_fb_predictor(tcp_flow_params flow, fb_formula formula,
                                             degraded_fb_config cfg)
    : flow_(flow), formula_(formula), cfg_(cfg) {}

std::optional<degraded_fb_predictor::outcome> degraded_fb_predictor::predict(
    const std::optional<path_measurement>& m) {
    if (m.has_value()) {
        last_good_ = m;
        staleness_ = 0;
    } else {
        ++staleness_;
    }
    if (!last_good_.has_value() || staleness_ > cfg_.max_staleness) return std::nullopt;
    return outcome{fb_predict(flow_, *last_good_, formula_), staleness_};
}

}  // namespace tcppred::core
