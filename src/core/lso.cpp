#include "core/lso.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcppred::core {

namespace {

double median_values(const std::vector<lso_filter::sample>& v, std::size_t begin,
                     std::size_t end) {
    std::vector<double> tmp;
    tmp.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) tmp.push_back(v[i].value);
    std::sort(tmp.begin(), tmp.end());
    const std::size_t n = tmp.size();
    if (n == 0) return 0.0;
    return n % 2 == 1 ? tmp[n / 2] : 0.5 * (tmp[n / 2 - 1] + tmp[n / 2]);
}

/// Relative gap between two positive levels, measured against the smaller:
/// symmetric for increasing and decreasing shifts.
double relative_gap(double a, double b) {
    const double lo = std::min(a, b);
    const double hi = std::max(a, b);
    if (lo <= 0.0) return hi > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    return (hi - lo) / lo;
}

}  // namespace

lso_filter::lso_filter(lso_config cfg) : cfg_(cfg) {
    if (cfg.gamma < 0 || cfg.psi < 0) throw std::invalid_argument("lso: negative thresholds");
}

void lso_filter::observe(double x) {
    // A missing sample (failed measurement) advances the index so detections
    // keep referring to original series positions, but never enters the
    // history: NaN would poison every median and min/max comparison.
    if (std::isnan(x)) {
        ++observed_;
        return;
    }
    history_.push_back(sample{observed_, x});
    ++observed_;
    detect_outliers();
    detect_level_shift();
}

void lso_filter::detect_outliers() {
    // A sample X_k with k < n is an outlier when it differs from the median
    // of {X_1..X_n} by more than a relative difference ψ. Two refinements
    // keep outlier removal from swallowing level shifts:
    //  * the trailing run of deviant samples is exempt — it may be the
    //    beginning of a new level (the shift detector decides later);
    //  * only short runs (1-2 samples) bounded by non-deviant samples are
    //    treated as outliers; longer interior runs are left alone.
    if (history_.size() < 3) return;
    const double med = median_values(history_, 0, history_.size());
    if (med <= 0.0) return;

    const auto deviant = [&](std::size_t i) {
        return relative_gap(history_[i].value, med) > cfg_.psi;
    };

    std::vector<std::size_t> to_remove;
    for (std::size_t i = 0; i < history_.size();) {
        if (!deviant(i)) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < history_.size() && deviant(j)) ++j;
        const bool terminated = j < history_.size();  // a normal sample follows
        if (terminated && j - i <= 2) {
            for (std::size_t k = i; k < j; ++k) to_remove.push_back(k);
        }
        i = j;
    }
    for (auto it = to_remove.rbegin(); it != to_remove.rend(); ++it) {
        outliers_.push_back(history_[*it].index);
        history_.erase(history_.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    std::sort(outliers_.begin(), outliers_.end());
}

void lso_filter::detect_level_shift() {
    const std::size_t n = history_.size();
    if (n < cfg_.min_post_shift_samples + 1) return;

    // Scan candidate shift positions k (0-based index of the first sample of
    // the new level). Paper conditions:
    //  1. all of X_1..X_{k-1} on one side of all of X_k..X_n,
    //  2. medians differ by more than γ (relative),
    //  3. at least min_post_shift_samples samples at the new level
    //     (the paper's k + 2 <= n with 1-based k).
    for (std::size_t k = 1; k + cfg_.min_post_shift_samples <= n; ++k) {
        double max_before = history_[0].value, min_before = history_[0].value;
        for (std::size_t i = 1; i < k; ++i) {
            max_before = std::max(max_before, history_[i].value);
            min_before = std::min(min_before, history_[i].value);
        }
        double max_after = history_[k].value, min_after = history_[k].value;
        for (std::size_t i = k + 1; i < n; ++i) {
            max_after = std::max(max_after, history_[i].value);
            min_after = std::min(min_after, history_[i].value);
        }
        const bool increasing = max_before < min_after;
        const bool decreasing = min_before > max_after;
        if (!increasing && !decreasing) continue;

        const double med_before = median_values(history_, 0, k);
        const double med_after = median_values(history_, k, n);
        if (relative_gap(med_before, med_after) <= cfg_.gamma) continue;

        shifts_.push_back(history_[k].index);
        history_.erase(history_.begin(),
                       history_.begin() + static_cast<std::ptrdiff_t>(k));
        return;
    }
}

lso_predictor::lso_predictor(std::unique_ptr<hb_predictor> inner, lso_config cfg)
    : prototype_(std::move(inner)), filter_(cfg) {
    if (!prototype_) throw std::invalid_argument("lso_predictor: null inner predictor");
    fitted_ = prototype_->clone_empty();
}

void lso_predictor::observe(double x) {
    filter_.observe(x);
    refit();
}

void lso_predictor::refit() {
    fitted_ = prototype_->clone_empty();
    for (const auto& s : filter_.cleaned()) fitted_->observe(s.value);
}

double lso_predictor::predict() const { return fitted_->predict(); }

void lso_predictor::reset() {
    filter_ = lso_filter(filter_.config());
    fitted_ = prototype_->clone_empty();
}

std::unique_ptr<hb_predictor> lso_predictor::clone_empty() const {
    return std::make_unique<lso_predictor>(prototype_->clone_empty(), filter_.config());
}

std::string lso_predictor::name() const { return prototype_->name() + "-LSO"; }

std::size_t lso_predictor::history_size() const { return filter_.cleaned().size(); }

lso_scan_result lso_scan(const std::vector<double>& series, lso_config cfg) {
    lso_filter filter(cfg);
    for (const double x : series) filter.observe(x);

    lso_scan_result out;
    out.is_outlier.assign(series.size(), false);
    for (const std::size_t i : filter.outlier_indices()) out.is_outlier[i] = true;
    out.segment_starts.push_back(0);
    for (const std::size_t i : filter.shift_indices()) out.segment_starts.push_back(i);
    return out;
}

}  // namespace tcppred::core
