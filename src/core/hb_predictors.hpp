// History-based (HB) predictors (§5.1): Moving Average, Exponentially
// Weighted Moving Average, and non-seasonal Holt-Winters, behind a common
// one-step-ahead forecasting interface.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <memory>
#include <string>

namespace tcppred::core {

/// A one-step-ahead forecaster over a scalar time series.
///
/// Usage: alternately call `predict()` (forecast for the *next* sample) and
/// `observe()` (reveal that sample). `predict()` returns NaN until the
/// predictor has enough history to forecast.
class hb_predictor {
public:
    virtual ~hb_predictor() = default;

    /// Reveal the next observed value.
    virtual void observe(double x) = 0;
    /// Forecast the next value; NaN while history is insufficient.
    [[nodiscard]] virtual double predict() const = 0;
    /// Forget all history (used on detected level shifts).
    virtual void reset() = 0;
    /// A fresh predictor of the same kind and parameters.
    [[nodiscard]] virtual std::unique_ptr<hb_predictor> clone_empty() const = 0;
    /// Human-readable name, e.g. "10-MA" or "0.8-HW".
    [[nodiscard]] virtual std::string name() const = 0;

    /// Number of samples observed since the last reset.
    [[nodiscard]] virtual std::size_t history_size() const = 0;

protected:
    static constexpr double nan() { return std::numeric_limits<double>::quiet_NaN(); }
};

/// n-order Moving Average: the mean of the last n observations
/// (1-MA = last value).
class moving_average final : public hb_predictor {
public:
    explicit moving_average(std::size_t order);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    [[nodiscard]] std::size_t order() const noexcept { return order_; }

private:
    std::size_t order_;
    std::deque<double> window_;
    double sum_{0.0};
    std::size_t seen_{0};
};

/// EWMA: X̂_{i+1} = α X_i + (1−α) X̂_i, initialized with the first sample.
class ewma final : public hb_predictor {
public:
    explicit ewma(double alpha);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double alpha_;
    double forecast_{0.0};
    std::size_t seen_{0};
};

/// Non-seasonal Holt-Winters (§5.1.3): separate smoothing and trend
/// components,
///   s_i = α X_i + (1−α)(s_{i−1} + t_{i−1})
///   t_i = β (s_i − s_{i−1}) + (1−β) t_{i−1}
///   forecast = s_i + t_i,
/// initialized per the paper with s_0 = X_0 and t_0 = X_1 − X_0 (forecasts
/// start after two samples).
class holt_winters final : public hb_predictor {
public:
    holt_winters(double alpha, double beta);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    [[nodiscard]] double alpha() const noexcept { return alpha_; }
    [[nodiscard]] double beta() const noexcept { return beta_; }

private:
    double alpha_;
    double beta_;
    double level_{0.0};
    double trend_{0.0};
    double first_{0.0};
    std::size_t seen_{0};
};

}  // namespace tcppred::core
