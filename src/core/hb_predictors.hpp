// History-based (HB) predictors (§5.1): Moving Average, Exponentially
// Weighted Moving Average, and non-seasonal Holt-Winters, behind a common
// one-step-ahead forecasting interface.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>
#include <memory>
#include <string>

namespace tcppred::core {

/// A one-step-ahead forecaster over a scalar time series.
///
/// Usage: alternately call `predict()` (forecast for the *next* sample) and
/// `observe()` (reveal that sample). `predict()` returns NaN until the
/// predictor has enough history to forecast.
///
/// Gap tolerance: series from a faulty measurement campaign contain missing
/// samples (the epoch's transfer aborted, the probe host was down). Feed
/// those through `observe_maybe(NaN)` / `observe_gap()` — the forecast keeps
/// running on the samples that exist, and `gap_count()` reports how many
/// samples were missing (graceful degradation, never a poisoned NaN state).
class hb_predictor {
public:
    virtual ~hb_predictor() = default;

    /// Reveal the next observed value. Must be a real number; missing
    /// samples go through observe_maybe()/observe_gap() instead.
    virtual void observe(double x) = 0;
    /// Reveal a possibly-missing sample: NaN marks a failed measurement and
    /// is routed to observe_gap() instead of poisoning the estimator state.
    void observe_maybe(double x) {
        if (std::isnan(x)) {
            observe_gap();
        } else {
            observe(x);
        }
    }
    /// Reveal that the next sample is missing. The default keeps the
    /// forecast unchanged and counts the gap; subclasses may age their state.
    virtual void observe_gap() { ++gaps_; }
    /// Forecast the next value; NaN while history is insufficient.
    [[nodiscard]] virtual double predict() const = 0;
    /// Forget all history (used on detected level shifts).
    virtual void reset() = 0;
    /// A fresh predictor of the same kind and parameters.
    [[nodiscard]] virtual std::unique_ptr<hb_predictor> clone_empty() const = 0;
    /// Human-readable name, e.g. "10-MA" or "0.8-HW".
    [[nodiscard]] virtual std::string name() const = 0;

    /// Number of samples observed since the last reset.
    [[nodiscard]] virtual std::size_t history_size() const = 0;

    /// Missing samples seen over the predictor's lifetime (not reset()).
    [[nodiscard]] std::size_t gap_count() const noexcept { return gaps_; }

protected:
    static constexpr double nan() { return std::numeric_limits<double>::quiet_NaN(); }

private:
    std::size_t gaps_{0};
};

/// n-order Moving Average: the mean of the last n observations
/// (1-MA = last value).
class moving_average final : public hb_predictor {
public:
    explicit moving_average(std::size_t order);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    [[nodiscard]] std::size_t order() const noexcept { return order_; }

private:
    std::size_t order_;
    std::deque<double> window_;
    double sum_{0.0};
    std::size_t seen_{0};
};

/// EWMA: X̂_{i+1} = α X_i + (1−α) X̂_i, initialized with the first sample.
class ewma final : public hb_predictor {
public:
    explicit ewma(double alpha);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double alpha_;
    double forecast_{0.0};
    std::size_t seen_{0};
};

/// Non-seasonal Holt-Winters (§5.1.3): separate smoothing and trend
/// components,
///   s_i = α X_i + (1−α)(s_{i−1} + t_{i−1})
///   t_i = β (s_i − s_{i−1}) + (1−β) t_{i−1}
///   forecast = s_i + t_i,
/// initialized per the paper with s_0 = X_0 and t_0 = X_1 − X_0 (forecasts
/// start after two samples).
class holt_winters final : public hb_predictor {
public:
    holt_winters(double alpha, double beta);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    [[nodiscard]] double alpha() const noexcept { return alpha_; }
    [[nodiscard]] double beta() const noexcept { return beta_; }

private:
    double alpha_;
    double beta_;
    double level_{0.0};
    double trend_{0.0};
    double first_{0.0};
    std::size_t seen_{0};
};

}  // namespace tcppred::core
