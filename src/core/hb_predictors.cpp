#include "core/hb_predictors.hpp"

#include <cmath>
#include <stdexcept>

namespace tcppred::core {

namespace {

std::string trimmed_double(double v) {
    std::string s = std::to_string(v);
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
}

}  // namespace

moving_average::moving_average(std::size_t order) : order_(order) {
    if (order == 0) throw std::invalid_argument("moving_average: order must be >= 1");
}

void moving_average::observe(double x) {
    window_.push_back(x);
    sum_ += x;
    if (window_.size() > order_) {
        sum_ -= window_.front();
        window_.pop_front();
    }
    ++seen_;
}

double moving_average::predict() const {
    if (window_.empty()) return nan();
    return sum_ / static_cast<double>(window_.size());
}

void moving_average::reset() {
    window_.clear();
    sum_ = 0.0;
    seen_ = 0;
}

std::unique_ptr<hb_predictor> moving_average::clone_empty() const {
    return std::make_unique<moving_average>(order_);
}

std::string moving_average::name() const { return std::to_string(order_) + "-MA"; }

ewma::ewma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha >= 1.0) throw std::invalid_argument("ewma: alpha in (0,1)");
}

void ewma::observe(double x) {
    if (seen_ == 0) {
        forecast_ = x;
    } else {
        forecast_ = alpha_ * x + (1.0 - alpha_) * forecast_;
    }
    ++seen_;
}

double ewma::predict() const { return seen_ == 0 ? nan() : forecast_; }

void ewma::reset() {
    forecast_ = 0.0;
    seen_ = 0;
}

std::unique_ptr<hb_predictor> ewma::clone_empty() const {
    return std::make_unique<ewma>(alpha_);
}

std::string ewma::name() const { return trimmed_double(alpha_) + "-EWMA"; }

holt_winters::holt_winters(double alpha, double beta) : alpha_(alpha), beta_(beta) {
    if (alpha <= 0.0 || alpha >= 1.0) throw std::invalid_argument("hw: alpha in (0,1)");
    if (beta <= 0.0 || beta >= 1.0) throw std::invalid_argument("hw: beta in (0,1)");
}

void holt_winters::observe(double x) {
    if (seen_ == 0) {
        first_ = x;
    } else if (seen_ == 1) {
        // Initialization in the spirit of the paper (s_0 = X_0,
        // t_0 ~ X_1 - X_0), but with the first trend estimate damped through
        // the trend filter: with LSO restarts the predictor re-initializes
        // often, and fully trusting a 2-sample trend makes the first
        // post-restart forecast wildly over-extrapolate on noisy series.
        const double prev_level = first_;
        trend_ = beta_ * (x - first_);
        level_ = alpha_ * x + (1.0 - alpha_) * (prev_level + trend_);
        trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    } else {
        const double prev_level = level_;
        level_ = alpha_ * x + (1.0 - alpha_) * (level_ + trend_);
        trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    }
    ++seen_;
}

double holt_winters::predict() const {
    if (seen_ == 0) return nan();
    if (seen_ == 1) return first_;  // no trend information yet
    // The forecast target (throughput) is non-negative: a steep downward
    // trend must not extrapolate below zero.
    const double forecast = level_ + trend_;
    if (forecast <= 0.0) return std::max(level_ * 0.05, 1e-9);
    return forecast;
}

void holt_winters::reset() {
    level_ = trend_ = first_ = 0.0;
    seen_ = 0;
}

std::unique_ptr<hb_predictor> holt_winters::clone_empty() const {
    return std::make_unique<holt_winters>(alpha_, beta_);
}

std::string holt_winters::name() const { return trimmed_double(alpha_) + "-HW"; }

}  // namespace tcppred::core
