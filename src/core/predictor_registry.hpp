// The predictor registry: every predictor in the repository — FB, the HB
// family, AR, the NWS-style selector, hybrids — is constructed from a spec
// string through core::make_predictor, so benches, tools, examples, and any
// future serving front-end share one naming scheme and one wiring point.
//
// Spec grammar (README "Predictor specs" has the full table):
//
//   fb | fb:pftk | fb:pftk-full | fb:sqrt | fb:minwa
//       formula-based (Eq. 3) with the chosen lossy-branch model; "fb" is
//       shorthand for "fb:pftk" (the paper's default). "fb:minwa" ignores
//       the loss estimate and always predicts min(W/T̂, Â).
//   <n>-MA | <a>-EWMA | <a>-HW | <p>-AR        history-based (§5.1)
//       e.g. "10-MA", "0.8-EWMA", "0.8-HW", "4-AR". Append "-LSO" to wrap
//       with the level-shift/outlier heuristics (§5.2): "10-MA-LSO".
//   NWS
//       adaptive selection racing the standard candidate set.
//   hybrid:<hb-spec> | hybrid:<hb-spec>:<k>
//       FB+HB blend (§7): e.g. "hybrid:0.8-HW-LSO", "hybrid:10-MA:5".
//       k = history length at which HB and FB weigh equally.
//
// Malformed or unknown specs throw predictor_spec_error, which carries the
// offending spec (tools map it to exit code 2).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/fb_formulas.hpp"
#include "core/fb_predictor.hpp"
#include "core/lso.hpp"
#include "core/predictor.hpp"

namespace tcppred::core {

/// Thrown by make_predictor on an unknown or malformed spec.
class predictor_spec_error : public std::invalid_argument {
public:
    predictor_spec_error(std::string spec, const std::string& reason)
        : std::invalid_argument("bad predictor spec '" + spec + "': " + reason),
          spec_(std::move(spec)) {}

    /// The spec string that failed to parse.
    [[nodiscard]] const std::string& spec() const noexcept { return spec_; }

private:
    std::string spec_;
};

/// Shared parameters a spec string does not encode: the modelled TCP flow,
/// the prediction window, fallback/LSO tuning. One config serves every spec
/// in an evaluation, so "fb:pftk" and "10-MA-LSO" are compared under the
/// same assumptions.
struct predictor_config {
    tcp_flow_params flow{};
    /// Sender window W for Eq. 3's W/T̂ bound; overrides flow.max_window.
    std::uint64_t window_bytes{1 << 20};
    degraded_fb_config degraded{};  ///< FB staleness fallback bound
    lso_config lso{};               ///< parameters for "-LSO"-wrapped specs
    double hw_beta{0.2};            ///< trend gain for "<a>-HW" specs
    double hybrid_fb_weight_samples{3.0};  ///< default k for "hybrid:" specs
};

/// Build a predictor from its spec string (grammar above). Throws
/// predictor_spec_error on unknown or malformed specs.
[[nodiscard]] std::unique_ptr<predictor> make_predictor(
    const std::string& spec, const predictor_config& cfg = {});

}  // namespace tcppred::core
