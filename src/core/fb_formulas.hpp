// TCP steady-state throughput formulas used by formula-based (FB)
// prediction: the Mathis "square-root" model, the PFTK approximation
// (Eq. 2 of the paper), the full PFTK model (stand-in for the revised
// formula of Chen et al., §4.2.9), the Cardwell slow-start model, and the
// inverse mapping from observed throughput to the congestion-event
// probability p' (Goyal et al., §3.3).
//
// All formulas are pure functions of path characteristics. Every input and
// output carries its unit in the type (core/units.hpp): rates are
// `bits_per_second`, times `seconds`, loss rates `probability` — swapping
// two differently-united arguments is a compile error. Domain invariants
// the types cannot express (T > 0, positive flow parameters) are contract
// preconditions (core/contracts.hpp).
#pragma once

#include "core/units.hpp"

namespace tcppred::core {

/// Flow parameters every formula needs.
struct tcp_flow_params {
    bytes mss{1460.0};             ///< M: segment size
    double segs_per_ack{2.0};      ///< b: segments acknowledged per ACK
    bytes max_window{1048576.0};   ///< W: maximum (receiver) window, 1 MB
};

/// Mathis et al. "square-root" model (Eq. 1):
///   E[R] = M / (T * sqrt(2bp/3)), capped at W/T.
/// For p == 0 returns the window bound W/T.
[[nodiscard]] bits_per_second square_root_throughput(const tcp_flow_params& f,
                                                     seconds rtt, probability p);

/// PFTK approximate model (Eq. 2):
///   E[R] = min( M / (T sqrt(2bp/3) + T0 min(1, sqrt(3bp/8)) p (1+32p^2)), W/T ).
/// For p == 0 returns the window bound W/T.
[[nodiscard]] bits_per_second pftk_throughput(const tcp_flow_params& f, seconds rtt,
                                              probability p, seconds t0);

/// Full PFTK model (Padhye et al., "full" equation with timeout-probability
/// term Q and window limitation), used here as the revised/corrected PFTK
/// variant evaluated in §4.2.9.
[[nodiscard]] bits_per_second pftk_full_throughput(const tcp_flow_params& f,
                                                   seconds rtt, probability p,
                                                   seconds t0);

/// Expected number of segments delivered by the initial slow start for a
/// d-segment transfer under loss rate p (Cardwell et al., quoted in §4.2.7):
///   E[d_ss] = (1 - (1-p)^d)(1-p)/p + 1.
[[nodiscard]] double expected_slow_start_segments(probability p, double d);

/// Approximate goodput of a *short* transfer of `d` segments: slow-start
/// phase (exponential window growth from `init_window` segments, growth
/// factor gamma = 1 + 1/b) followed by steady-state at the PFTK rate. The
/// documented extension predictor for short flows (paper future work /
/// Arlitt et al. approach).
[[nodiscard]] bits_per_second short_transfer_throughput(
    const tcp_flow_params& f, seconds rtt, probability p, seconds t0,
    double d_segments, double init_window_segments = 2.0);

/// Invert the PFTK approximate model: find the loss probability p' that
/// would make PFTK output the observed throughput. This is the
/// "congestion-event probability implied by the achieved rate" used when
/// comparing ping-measured loss rates with what TCP actually experienced.
/// Returns a value in [1e-9, 1]; returns 0 when the throughput is at or
/// above the window bound W/T.
[[nodiscard]] probability pftk_implied_loss(const tcp_flow_params& f, seconds rtt,
                                            seconds t0, bits_per_second throughput);

/// Retransmission-timeout estimate the FB predictor uses (§3.1):
///   T0_hat = max(1 s, 2 * SRTT), with SRTT taken as the a-priori RTT.
[[nodiscard]] inline seconds estimate_t0(seconds rtt) {
    return rtt.value() * 2.0 > 1.0 ? seconds{rtt.value() * 2.0} : seconds{1.0};
}

}  // namespace tcppred::core
