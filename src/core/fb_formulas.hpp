// TCP steady-state throughput formulas used by formula-based (FB)
// prediction: the Mathis "square-root" model, the PFTK approximation
// (Eq. 2 of the paper), the full PFTK model (stand-in for the revised
// formula of Chen et al., §4.2.9), the Cardwell slow-start model, and the
// inverse mapping from observed throughput to the congestion-event
// probability p' (Goyal et al., §3.3).
//
// All formulas are pure functions of path characteristics; rates are in
// bits per second, times in seconds, p in [0, 1].
#pragma once

#include <cstdint>

namespace tcppred::core {

/// Flow parameters every formula needs.
struct tcp_flow_params {
    double mss_bytes{1460};       ///< M: segment size
    double segs_per_ack{2};       ///< b: segments acknowledged per ACK
    double max_window_bytes{1 << 20};  ///< W: maximum (receiver) window
};

/// Mathis et al. "square-root" model (Eq. 1):
///   E[R] = M / (T * sqrt(2bp/3)), capped at W/T.
/// Returns bits/second. For p == 0 returns the window bound W/T.
[[nodiscard]] double square_root_throughput(const tcp_flow_params& f, double rtt_s, double p);

/// PFTK approximate model (Eq. 2):
///   E[R] = min( M / (T sqrt(2bp/3) + T0 min(1, sqrt(3bp/8)) p (1+32p^2)), W/T ).
/// Returns bits/second. For p == 0 returns the window bound W/T.
[[nodiscard]] double pftk_throughput(const tcp_flow_params& f, double rtt_s, double p,
                                     double t0_s);

/// Full PFTK model (Padhye et al., "full" equation with timeout-probability
/// term Q and window limitation), used here as the revised/corrected PFTK
/// variant evaluated in §4.2.9. Returns bits/second.
[[nodiscard]] double pftk_full_throughput(const tcp_flow_params& f, double rtt_s, double p,
                                          double t0_s);

/// Expected number of segments delivered by the initial slow start for a
/// d-segment transfer under loss rate p (Cardwell et al., quoted in §4.2.7):
///   E[d_ss] = (1 - (1-p)^d)(1-p)/p + 1.
[[nodiscard]] double expected_slow_start_segments(double p, double d);

/// Approximate goodput of a *short* transfer of `d` segments: slow-start
/// phase (exponential window growth from `init_window` segments, growth
/// factor gamma = 1 + 1/b) followed by steady-state at the PFTK rate. The
/// documented extension predictor for short flows (paper future work /
/// Arlitt et al. approach).
[[nodiscard]] double short_transfer_throughput(const tcp_flow_params& f, double rtt_s,
                                               double p, double t0_s, double d_segments,
                                               double init_window_segments = 2.0);

/// Invert the PFTK approximate model: find the loss probability p' that
/// would make PFTK output the observed throughput. This is the
/// "congestion-event probability implied by the achieved rate" used when
/// comparing ping-measured loss rates with what TCP actually experienced.
/// Returns a value in [1e-9, 1]; returns 0 when the throughput is at or
/// above the window bound W/T.
[[nodiscard]] double pftk_implied_loss(const tcp_flow_params& f, double rtt_s, double t0_s,
                                       double throughput_bps);

/// Retransmission-timeout estimate the FB predictor uses (§3.1):
///   T0_hat = max(1 s, 2 * SRTT), with SRTT taken as the a-priori RTT.
[[nodiscard]] inline double estimate_t0(double rtt_s) {
    return rtt_s * 2.0 > 1.0 ? rtt_s * 2.0 : 1.0;
}

}  // namespace tcppred::core
