#include "core/ar_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcppred::core {

std::vector<double> fit_ar_coefficients(const std::vector<double>& series,
                                        std::size_t order) {
    const std::size_t n = series.size();
    if (order == 0 || n < order + 2) return {};

    double mean = 0.0;
    for (const double x : series) mean += x;
    mean /= static_cast<double>(n);

    // Sample autocovariances r_0..r_p.
    std::vector<double> r(order + 1, 0.0);
    for (std::size_t lag = 0; lag <= order; ++lag) {
        double acc = 0.0;
        for (std::size_t t = lag; t < n; ++t) {
            acc += (series[t] - mean) * (series[t - lag] - mean);
        }
        r[lag] = acc / static_cast<double>(n);
    }
    if (r[0] <= 0.0) return {};  // constant series: AR model degenerate

    // Levinson-Durbin recursion.
    std::vector<double> a(order + 1, 0.0);  // a[1..k] at stage k
    double err = r[0];
    for (std::size_t k = 1; k <= order; ++k) {
        double acc = r[k];
        for (std::size_t j = 1; j < k; ++j) acc -= a[j] * r[k - j];
        const double reflection = acc / err;
        std::vector<double> prev(a);
        a[k] = reflection;
        for (std::size_t j = 1; j < k; ++j) a[j] = prev[j] - reflection * prev[k - j];
        err *= (1.0 - reflection * reflection);
        if (err <= 0.0) break;  // perfectly predictable: keep current fit
    }
    return std::vector<double>(a.begin() + 1, a.end());
}

ar_predictor::ar_predictor(std::size_t order, std::size_t window)
    : order_(order), window_(window), min_fit_(std::max<std::size_t>(order + 2, 6)) {
    if (order == 0) throw std::invalid_argument("ar_predictor: order must be >= 1");
    if (window != 0 && window < min_fit_) {
        throw std::invalid_argument("ar_predictor: window too short for the order");
    }
}

void ar_predictor::observe(double x) {
    history_.push_back(x);
    if (window_ != 0 && history_.size() > window_) history_.pop_front();
    refit();
}

void ar_predictor::refit() {
    mean_ = 0.0;
    for (const double x : history_) mean_ += x;
    if (!history_.empty()) mean_ /= static_cast<double>(history_.size());

    if (history_.size() < min_fit_) {
        coefficients_.clear();
        return;
    }
    coefficients_ = fit_ar_coefficients(
        std::vector<double>(history_.begin(), history_.end()), order_);
}

double ar_predictor::predict() const {
    if (history_.empty()) return nan();
    if (coefficients_.empty()) return mean_;  // fallback: window mean

    double forecast = mean_;
    for (std::size_t k = 0; k < coefficients_.size() && k < history_.size(); ++k) {
        forecast += coefficients_[k] * (history_[history_.size() - 1 - k] - mean_);
    }
    // Throughput forecasts are non-negative.
    if (forecast <= 0.0) return std::max(mean_ * 0.05, 1e-9);
    return forecast;
}

void ar_predictor::reset() {
    history_.clear();
    coefficients_.clear();
    mean_ = 0.0;
}

std::unique_ptr<hb_predictor> ar_predictor::clone_empty() const {
    return std::make_unique<ar_predictor>(order_, window_);
}

std::string ar_predictor::name() const { return std::to_string(order_) + "-AR"; }

}  // namespace tcppred::core
