#include "core/fb_formulas.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace tcppred::core {

namespace {

// Strong types make an out-of-domain probability unrepresentable upstream;
// what remains to check here are the invariants the types cannot carry.
void check_inputs(const tcp_flow_params& f, seconds rtt) {
    TCPPRED_EXPECTS(f.mss.value() > 0.0);
    TCPPRED_EXPECTS(f.segs_per_ack > 0.0);
    TCPPRED_EXPECTS(f.max_window.value() > 0.0);
    TCPPRED_EXPECTS(rtt.value() > 0.0);
}

[[nodiscard]] double window_bound_bps(const tcp_flow_params& f, double rtt_s) {
    return f.max_window.value() * 8.0 / rtt_s;
}

/// Probability Q(p, w) that a loss indication ends in a timeout (full PFTK).
[[nodiscard]] double pftk_q(double p, double w) {
    if (w < 1.0) w = 1.0;
    const double q1 = 1.0 - std::pow(1.0 - p, 3.0);
    const double qw = 1.0 - std::pow(1.0 - p, w);
    if (qw <= 0.0) return 1.0;
    const double tail = w > 3.0 ? 1.0 - std::pow(1.0 - p, w - 3.0) : 0.0;
    const double q = q1 * (1.0 + std::pow(1.0 - p, 3.0) * tail) / qw;
    return std::min(1.0, q);
}

/// G(p) = 1 + p + 2p^2 + 4p^3 + 8p^4 + 16p^5 + 32p^6 (timeout backoff series).
[[nodiscard]] double pftk_g(double p) {
    double g = 1.0, term = 1.0;
    double coef = 1.0;
    for (int i = 1; i <= 6; ++i) {
        term *= p;
        g += coef * term;
        coef = (i == 1) ? 2.0 : coef * 2.0;
    }
    return g;
}

}  // namespace

bits_per_second square_root_throughput(const tcp_flow_params& f, seconds rtt,
                                       probability loss) {
    check_inputs(f, rtt);
    const double rtt_s = rtt.value();
    const double p = loss.value();
    const double bound = window_bound_bps(f, rtt_s);
    if (p <= 0.0) return bits_per_second{bound};
    const double rate =
        f.mss.value() * 8.0 / (rtt_s * std::sqrt(2.0 * f.segs_per_ack * p / 3.0));
    return bits_per_second{std::min(rate, bound)};
}

bits_per_second pftk_throughput(const tcp_flow_params& f, seconds rtt,
                                probability loss, seconds t0) {
    check_inputs(f, rtt);
    TCPPRED_EXPECTS(t0.value() > 0.0);
    const double rtt_s = rtt.value();
    const double p = loss.value();
    const double bound = window_bound_bps(f, rtt_s);
    if (p <= 0.0) return bits_per_second{bound};
    const double b = f.segs_per_ack;
    const double denom = rtt_s * std::sqrt(2.0 * b * p / 3.0) +
                         t0.value() * std::min(1.0, std::sqrt(3.0 * b * p / 8.0)) * p *
                             (1.0 + 32.0 * p * p);
    const double rate = f.mss.value() * 8.0 / denom;
    return bits_per_second{std::min(rate, bound)};
}

bits_per_second pftk_full_throughput(const tcp_flow_params& f, seconds rtt,
                                     probability loss, seconds t0) {
    check_inputs(f, rtt);
    TCPPRED_EXPECTS(t0.value() > 0.0);
    const double rtt_s = rtt.value();
    const double bound = window_bound_bps(f, rtt_s);
    if (loss.value() <= 0.0) return bits_per_second{bound};
    const double p = std::min(loss.value(), 0.99);

    const double b = f.segs_per_ack;
    const double wm = std::max(1.0, f.max_window.value() / f.mss.value());
    const double c = (2.0 + b) / (3.0 * b);
    const double w_unconstrained =
        c + std::sqrt(8.0 * (1.0 - p) / (3.0 * b * p) + c * c);

    double segments_per_second;
    if (w_unconstrained < wm) {
        const double w = w_unconstrained;
        const double q = pftk_q(p, w);
        const double num = (1.0 - p) / p + w + q / (1.0 - p);
        const double den =
            rtt_s * (b / 2.0 * w + 1.0) + q * pftk_g(p) * t0.value() / (1.0 - p);
        segments_per_second = num / den;
    } else {
        const double q = pftk_q(p, wm);
        const double num = (1.0 - p) / p + wm + q / (1.0 - p);
        const double den = rtt_s * (b / 8.0 * wm + (1.0 - p) / (p * wm) + 2.0) +
                           q * pftk_g(p) * t0.value() / (1.0 - p);
        segments_per_second = num / den;
    }
    return bits_per_second{std::min(segments_per_second * f.mss.value() * 8.0, bound)};
}

double expected_slow_start_segments(probability loss, double d) {
    TCPPRED_EXPECTS(d >= 0.0);
    const double p = loss.value();
    if (p == 0.0) return d + 1.0;  // limit of the expression as p -> 0 is d + 1
    return (1.0 - std::pow(1.0 - p, d)) * (1.0 - p) / p + 1.0;
}

bits_per_second short_transfer_throughput(const tcp_flow_params& f, seconds rtt,
                                          probability loss, seconds t0,
                                          double d_segments,
                                          double init_window_segments) {
    check_inputs(f, rtt);
    if (d_segments <= 0) return bits_per_second{0.0};

    const double d_ss = std::min(expected_slow_start_segments(loss, d_segments),
                                 d_segments);
    // Slow-start duration: window grows by factor gamma = 1 + 1/b per RTT;
    // cumulative segments after r rounds: w1 (gamma^r - 1)/(gamma - 1).
    const double gamma = 1.0 + 1.0 / f.segs_per_ack;
    const double rounds =
        std::log(d_ss * (gamma - 1.0) / init_window_segments + 1.0) / std::log(gamma);
    const double t_ss = rounds * rtt.value();

    const double steady_bps = pftk_throughput(f, rtt, loss, t0).value();
    const double remaining_segments = d_segments - d_ss;
    const double t_steady = remaining_segments * f.mss.value() * 8.0 / steady_bps;
    const double total_time = t_ss + t_steady;
    if (total_time <= 0.0) return bits_per_second{steady_bps};
    return bits_per_second{d_segments * f.mss.value() * 8.0 / total_time};
}

probability pftk_implied_loss(const tcp_flow_params& f, seconds rtt, seconds t0,
                              bits_per_second throughput) {
    check_inputs(f, rtt);
    const double throughput_bps = throughput.value();
    if (throughput_bps <= 0.0) return probability{1.0};
    if (throughput_bps >= window_bound_bps(f, rtt.value())) return probability{0.0};

    // pftk_throughput is strictly decreasing in p: bisection.
    double lo = 1e-9, hi = 1.0;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (pftk_throughput(f, rtt, probability{mid}, t0).value() > throughput_bps) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return probability{0.5 * (lo + hi)};
}

}  // namespace tcppred::core
