// Loss-event (congestion-event) estimation — the Goyal et al. correction
// discussed in §2/§3.3: the PFTK parameter p should be the *congestion
// event* probability, not the raw packet loss rate. Drop-tail losses come
// in bursts, so the raw rate overestimates the event rate; collapsing
// consecutive losses in a periodic probe sequence into single events gives
// a better p' estimate from the same probes.
#pragma once

#include <cstdint>
#include <span>

namespace tcppred::core {

/// Raw loss fraction of a probe outcome sequence (1 = received, 0 = lost).
[[nodiscard]] double packet_loss_rate(std::span<const std::uint8_t> outcomes);

/// Loss-EVENT rate: maximal runs of consecutive losses count once.
/// This is the Goyal-style estimate of the congestion-event probability p'
/// from periodic probing.
[[nodiscard]] double loss_event_rate(std::span<const std::uint8_t> outcomes);

/// Mean length of a loss burst (1.0 when losses are isolated; 0 when there
/// are no losses). The ratio p / p' the paper's §3.3 talks about.
[[nodiscard]] double mean_loss_burst_length(std::span<const std::uint8_t> outcomes);

}  // namespace tcppred::core
