#include "core/predictor_registry.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "core/adaptive_selector.hpp"
#include "core/ar_predictor.hpp"
#include "core/hb_predictors.hpp"

namespace tcppred::core {

namespace {

/// Strict numeric parses: the whole token must be consumed, so "10x-MA" or
/// "0..8-HW" fail instead of silently truncating.
std::size_t parse_count(const std::string& token, const std::string& spec) {
    if (token.empty() || !std::isdigit(static_cast<unsigned char>(token.front()))) {
        throw predictor_spec_error(spec, "expected a count, got '" + token + "'");
    }
    std::size_t pos = 0;
    unsigned long v = 0;
    try {
        v = std::stoul(token, &pos);
    } catch (const std::exception&) {
        throw predictor_spec_error(spec, "expected a count, got '" + token + "'");
    }
    if (pos != token.size()) {
        throw predictor_spec_error(spec, "trailing characters in '" + token + "'");
    }
    return v;
}

double parse_real(const std::string& token, const std::string& spec) {
    if (token.empty()) throw predictor_spec_error(spec, "expected a number");
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(token, &pos);
    } catch (const std::exception&) {
        throw predictor_spec_error(spec, "expected a number, got '" + token + "'");
    }
    if (pos != token.size()) {
        throw predictor_spec_error(spec, "trailing characters in '" + token + "'");
    }
    return v;
}

formula_kind parse_formula(const std::string& what, const std::string& spec) {
    if (what.empty() || what == "pftk") return formula_kind::pftk;
    if (what == "pftk-full") return formula_kind::pftk_full;
    if (what == "sqrt") return formula_kind::square_root;
    if (what == "minwa") return formula_kind::min_wa;
    throw predictor_spec_error(spec, "unknown formula '" + what +
                                         "' (expected pftk, pftk-full, sqrt, minwa)");
}

/// "<param>-<kind>[-LSO]" | "NWS" → a one-step series forecaster.
std::unique_ptr<hb_predictor> parse_hb(const std::string& hb_spec,
                                       const std::string& spec,
                                       const predictor_config& cfg) {
    if (hb_spec == "NWS") return adaptive_selector::standard();

    const bool with_lso = hb_spec.size() > 4 && hb_spec.ends_with("-LSO");
    const std::string base = with_lso ? hb_spec.substr(0, hb_spec.size() - 4) : hb_spec;

    const auto dash = base.rfind('-');
    if (dash == std::string::npos || dash == 0 || dash + 1 == base.size()) {
        throw predictor_spec_error(
            spec, "expected '<param>-<kind>[-LSO]', 'NWS', 'fb[:formula]' or "
                  "'hybrid:<hb-spec>[:<k>]'");
    }
    const std::string param = base.substr(0, dash);
    const std::string kind = base.substr(dash + 1);

    std::unique_ptr<hb_predictor> inner;
    try {
        if (kind == "MA") {
            inner = std::make_unique<moving_average>(parse_count(param, spec));
        } else if (kind == "EWMA") {
            inner = std::make_unique<ewma>(parse_real(param, spec));
        } else if (kind == "HW") {
            inner = std::make_unique<holt_winters>(parse_real(param, spec), cfg.hw_beta);
        } else if (kind == "AR") {
            inner = std::make_unique<ar_predictor>(parse_count(param, spec));
        } else {
            throw predictor_spec_error(
                spec, "unknown predictor kind '" + kind + "' (expected MA, EWMA, HW, AR)");
        }
    } catch (const predictor_spec_error&) {
        throw;
    } catch (const std::exception& e) {
        // Out-of-range parameters (MA order 0, EWMA alpha outside (0,1], ...)
        // are rejected by the predictor constructors; surface them as spec
        // errors so callers handle one exception type.
        throw predictor_spec_error(spec, e.what());
    }
    if (with_lso) return std::make_unique<lso_predictor>(std::move(inner), cfg.lso);
    return inner;
}

}  // namespace

std::unique_ptr<predictor> make_predictor(const std::string& spec,
                                          const predictor_config& cfg) {
    if (spec.empty()) throw predictor_spec_error(spec, "empty spec");

    tcp_flow_params flow = cfg.flow;
    flow.max_window = bytes{static_cast<double>(cfg.window_bytes)};

    if (spec == "fb" || spec.starts_with("fb:")) {
        const std::string what = spec == "fb" ? "" : spec.substr(3);
        return std::make_unique<formula_predictor>(parse_formula(what, spec), flow,
                                                   cfg.degraded);
    }

    if (spec.starts_with("hybrid:")) {
        std::string rest = spec.substr(7);
        double k = cfg.hybrid_fb_weight_samples;
        if (const auto colon = rest.rfind(':'); colon != std::string::npos) {
            k = parse_real(rest.substr(colon + 1), spec);
            rest = rest.substr(0, colon);
        }
        if (k <= 0.0) throw predictor_spec_error(spec, "hybrid k must be positive");
        return std::make_unique<blended_predictor>(parse_hb(rest, spec, cfg), k,
                                                   formula_kind::pftk, flow,
                                                   cfg.degraded);
    }

    return std::make_unique<history_predictor>(parse_hb(spec, spec, cfg));
}

}  // namespace tcppred::core
