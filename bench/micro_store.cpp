// google-benchmark micro-benchmarks for the chunked record store
// (testbed/record_store.hpp): sequential ingest rate through record_writer
// and scan rate through record_reader — the two cursors every past-RAM
// campaign and analysis pass is built on. Records are synthetic (filled
// from the index, no simulation) so the numbers isolate serialization cost.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "testbed/dataset.hpp"
#include "testbed/record_store.hpp"

using namespace tcppred;

namespace {

constexpr std::size_t k_records = 4096;
constexpr std::size_t k_chunk = 512;

testbed::epoch_record synthetic_record(std::size_t i) {
    testbed::epoch_record r;
    r.path_id = static_cast<int>(i / (k_records / 4));
    r.trace_id = 0;
    r.epoch_index = static_cast<int>(i % (k_records / 4));
    const double x = static_cast<double>(i + 1);
    r.m.avail_bw_bps = 5e6 + x;
    r.m.phat = 0.01 + 1.0 / x;
    r.m.phat_events = 17;
    r.m.that_s = 0.08 + 0.001 / x;
    r.m.ptilde = 0.02 + 1.0 / x;
    r.m.ttilde_s = 0.09;
    r.m.r_large_bps = 4e6 + x;
    r.m.r_small_bps = 1e6 + x;
    r.m.tcp_loss_rate = 0.005;
    r.m.tcp_event_rate = 0.004;
    r.m.tcp_mean_rtt_s = 0.081;
    r.m.sim_time_s = 12.5;
    r.m.events = 100000 + i;
    r.m.prefix_goodputs = {{2.0, 3e6 + x}, {5.0, 3.5e6 + x}, {10.0, 3.8e6 + x}};
    return r;
}

std::filesystem::path bench_store_path() {
    return std::filesystem::temp_directory_path() / "tcppred_micro_store.store";
}

void write_bench_store() {
    testbed::record_writer w(bench_store_path(), "micro-bench-fingerprint", {},
                             testbed::store_options{k_chunk});
    for (std::size_t i = 0; i < k_records; ++i) w.append(synthetic_record(i));
    w.finish();
}

void bm_store_ingest(benchmark::State& state) {
    for (auto _ : state) {
        write_bench_store();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k_records));
    std::filesystem::remove(bench_store_path());
}
BENCHMARK(bm_store_ingest);

void bm_store_scan(benchmark::State& state) {
    write_bench_store();
    for (auto _ : state) {
        testbed::record_reader r(bench_store_path());
        testbed::epoch_record rec;
        std::size_t n = 0;
        while (r.next(rec)) ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k_records));
    std::filesystem::remove(bench_store_path());
}
BENCHMARK(bm_store_scan);

}  // namespace

BENCHMARK_MAIN();
