// §4.2.7 ablation: the Cardwell slow-start model E[d_ss] and the
// short-transfer FB extension, validated against simulated short transfers
// on a clean path (the regime where the model's assumptions hold).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/fb_formulas.hpp"
#include "net/path.hpp"
#include "probe/bulk_transfer.hpp"
#include "sim/scheduler.hpp"

using namespace tcppred;
using namespace tcppred::bench;

namespace {

/// Goodput of a `segments`-long transfer on a clean path with the given
/// Bernoulli random loss.
double simulate_short_transfer(double loss, std::uint64_t segments) {
    sim::scheduler sched;
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{50e6}, core::seconds{0.040}, 256}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{100e6}, core::seconds{0.040}, 256}};
    net::duplex_path path(sched, fwd, rev);
    if (loss > 0) path.forward_link(0).set_random_loss(loss, 99);
    net::path_conduit conduit(path);

    tcp::tcp_config cfg;
    tcp::tcp_connection conn(sched, conduit, 1, cfg);
    conn.start();
    double done_at = 0.0;
    // Run until the requested number of segments is delivered.
    while (conn.sender().stats().segments_delivered < segments && sched.now() < 300.0) {
        if (!sched.step()) break;
        done_at = sched.now();
    }
    conn.quiesce();
    const double bytes = static_cast<double>(conn.sender().stats().segments_delivered) *
                         cfg.mss_bytes;
    return done_at > 0 ? bytes * 8.0 / done_at : 0.0;
}

}  // namespace

int main() {
    banner("Ablation (s4.2.7): slow-start share and the short-transfer FB extension",
           "E[d_ss] = (1-(1-p)^d)(1-p)/p + 1 segments ride the initial slow start; short "
           "transfers need a slow-start-aware predictor (Cardwell / Arlitt et al.)");

    core::tcp_flow_params flow;
    const double rtt = 0.080, t0 = 1.0;

    std::printf("%-10s %-12s %-18s %-20s %-16s\n", "d (segs)", "p", "E[d_ss] (model)",
                "short-model (Mbps)", "simulated (Mbps)");
    for (const double p : {0.001, 0.01}) {
        for (const std::uint64_t d : {50ull, 200ull, 1000ull, 5000ull}) {
            const double dss = core::expected_slow_start_segments(
                core::probability{p}, static_cast<double>(d));
            const double model =
                core::short_transfer_throughput(flow, core::seconds{rtt},
                                                core::probability{p}, core::seconds{t0},
                                                static_cast<double>(d))
                    .value();
            const double sim = simulate_short_transfer(p, d);
            std::printf("%-10llu %-12.3f %-18.1f %-20.2f %-16.2f\n",
                        static_cast<unsigned long long>(d), p, dss, model / 1e6, sim / 1e6);
        }
    }
    std::printf("\n(shape check: throughput grows with transfer length while slow start "
                "dominates, and the steady-state limit matches PFTK; the simulated path "
                "uses the same RTT but its own RTO/delack timing, so absolute values "
                "differ)\n");
    return 0;
}
