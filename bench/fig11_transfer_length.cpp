// Fig. 11 / §4.2.7: FB prediction accuracy for transfer prefixes of
// different lengths (the paper's second measurement set: 120 s transfers
// scored over their first 30, 60 and 120 seconds; this build's campaign 2
// uses the same 1/4, 1/2, full-length plan over compressed transfers).
#include <cstdio>

#include "core/metrics.hpp"
#include "core/predictor_registry.hpp"
#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 11: FB error CDF for transfer prefixes of different lengths (campaign 2)",
           "no noticeable correlation between prediction error and transfer duration "
           "(for flows long enough that slow start is negligible)");

    const auto data = testbed::ensure_campaign2();
    const auto fb = core::make_predictor("fb:pftk");

    std::vector<std::vector<double>> errors;  // one vector per prefix index
    std::vector<double> prefix_lengths;
    for (const auto& r : data.records) {
        const auto& m = r.m;
        if (m.that_s <= 0) continue;
        core::path_measurement meas{core::probability{m.phat},
                                    core::seconds{m.that_s},
                                    core::bits_per_second{m.avail_bw_bps}};
        const double pred = fb->predict(core::epoch_inputs::valid(meas)).value_bps;
        for (std::size_t i = 0; i < m.prefix_goodputs.size(); ++i) {
            if (errors.size() <= i) {
                errors.emplace_back();
                prefix_lengths.push_back(m.prefix_goodputs[i].first);
            }
            if (m.prefix_goodputs[i].second > 0) {
                errors[i].push_back(core::relative_error(pred, m.prefix_goodputs[i].second));
            }
        }
    }

    const auto grid = error_grid();
    std::vector<std::pair<std::string, analysis::ecdf>> series;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        char label[64];
        std::snprintf(label, sizeof label, "first %.0f s (paper: %.0f s)",
                      prefix_lengths[i], prefix_lengths[i] * 5);
        series.emplace_back(label, analysis::ecdf(errors[i]));
    }
    print_cdf_table(series, grid, "E ->");

    std::printf("\nheadline: median |E| per prefix:");
    for (std::size_t i = 0; i < errors.size(); ++i) {
        std::vector<double> abs;
        for (const double e : errors[i]) abs.push_back(std::abs(e));
        std::printf("  %.0fs: %.2f", prefix_lengths[i], analysis::median(abs));
    }
    std::printf("   (paper: no trend with length)\n");
    return 0;
}
