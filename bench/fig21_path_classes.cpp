// Fig. 21 / §6.1.4: 12 sample paths grouped into four predictability
// classes, with the per-trace RMSRE of 1-MA, 10-MA, HW and HW-LSO.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 21: path predictability classes",
           "(a) predictable paths (low RMSRE), (b) small and stable errors, (c) small "
           "but unstable errors across traces, (d) unpredictable paths (high RMSRE); "
           "HW-LSO is almost always the best of the four predictors");

    const auto data = testbed::ensure_campaign1();

    const std::vector<std::string> specs{"1-MA", "10-MA", "0.8-HW", "0.8-HW-LSO"};
    const auto results = run_predictors(data, specs);
    // rmsre[path][trace][spec]
    std::map<int, std::map<int, std::vector<double>>> rmsre;
    for (const auto& result : results) {
        for (const auto& t : result.traces) {
            rmsre[t.path_id][t.trace_id].push_back(t.rmsre);
        }
    }

    // Classify each path by mean and spread of its HW-LSO trace RMSREs.
    struct row {
        int path;
        double mean_err, spread;
    };
    std::vector<row> rows;
    for (const auto& [path, traces] : rmsre) {
        std::vector<double> hwlso;
        for (const auto& [trace, vals] : traces) hwlso.push_back(vals.back());
        rows.push_back(row{path, analysis::mean(hwlso),
                           analysis::quantile(hwlso, 1.0) - analysis::quantile(hwlso, 0.0)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const row& a, const row& b) { return a.mean_err < b.mean_err; });

    auto klass = [](const row& r) {
        if (r.mean_err < 0.2) return "a: predictable";
        if (r.mean_err < 0.5) return r.spread < 0.25 ? "b: stable errors" : "c: unstable errors";
        return "d: unpredictable";
    };

    // Print 12 sample paths spread across the sorted order.
    std::printf("%-10s %-20s", "path", "class");
    for (const auto& s : specs) std::printf(" %10s", s.c_str());
    std::printf("   (RMSRE per trace, first trace shown per cell)\n");
    const std::size_t step = std::max<std::size_t>(1, rows.size() / 12);
    for (std::size_t i = 0; i < rows.size(); i += step) {
        const row& r = rows[i];
        const auto& prof = data.profile(r.path);
        for (const auto& [trace, vals] : rmsre[r.path]) {
            std::printf("%-10s %-20s", prof.name.c_str(), klass(r));
            for (const double v : vals) std::printf(" %10.3f", v);
            std::printf("   trace %d\n", trace);
        }
    }

    int a = 0, b = 0, c = 0, d = 0;
    for (const auto& r : rows) {
        const std::string k = klass(r);
        if (k[0] == 'a') ++a;
        else if (k[0] == 'b') ++b;
        else if (k[0] == 'c') ++c;
        else ++d;
    }
    std::printf("\nheadline: class sizes over %zu paths: predictable=%d stable=%d "
                "unstable=%d unpredictable=%d (paper: all four classes occur)\n",
                rows.size(), a, b, c, d);
    return 0;
}
