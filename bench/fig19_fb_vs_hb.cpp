// Fig. 19 / §6.1.2: per-trace RMSRE CDF of the FB predictor, compared with
// the HB predictors — when history exists, HB is dramatically better.
#include <cstdio>

#include "analysis/fb_analysis.hpp"
#include "analysis/hb_analysis.hpp"
#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 19: per-trace RMSRE CDF for FB (vs HB)",
           "HB reaches RMSRE < 0.4 on ~90% of traces; the FB predictor's 90th-percentile "
           "RMSRE is ~20 and its median ~2 — an order of magnitude worse");

    const auto data = testbed::ensure_campaign1();

    const auto fb = analysis::fb_rmsre_per_trace(analysis::evaluate_fb(data));
    std::vector<double> fb_rmsre;
    for (const auto& t : fb) fb_rmsre.push_back(t.rmsre);

    std::vector<std::pair<std::string, analysis::ecdf>> series;
    series.emplace_back("FB (Eq. 3)", analysis::ecdf(fb_rmsre));
    for (const char* spec : {"10-MA-LSO", "0.8-HW-LSO"}) {
        const auto pred = analysis::make_predictor(spec);
        series.emplace_back(spec, analysis::ecdf(analysis::rmsre_of(
                                      analysis::hb_rmsre_per_trace(data, *pred))));
    }

    const std::vector<double> grid{0.1, 0.2, 0.4, 0.6, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0};
    print_cdf_table(series, grid, "RMSRE ->");

    std::printf("\nheadline:\n");
    for (const auto& [name, cdf] : series) {
        std::printf("  %-12s median RMSRE %.2f, 90th percentile %.2f, P(RMSRE<0.4) %.0f%%\n",
                    name.c_str(), cdf.quantile(0.5), cdf.quantile(0.9),
                    100.0 * cdf.at(0.4));
    }
    return 0;
}
