// Fig. 19 / §6.1.2: per-trace RMSRE CDF of the FB predictor, compared with
// the HB predictors — when history exists, HB is dramatically better.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 19: per-trace RMSRE CDF for FB (vs HB)",
           "HB reaches RMSRE < 0.4 on ~90% of traces; the FB predictor's 90th-percentile "
           "RMSRE is ~20 and its median ~2 — an order of magnitude worse");

    const auto data = testbed::ensure_campaign1();

    // One streaming pass feeds the FB predictor and both HB predictors.
    const auto results = run_predictors(data, {"fb:pftk", "10-MA-LSO", "0.8-HW-LSO"});

    std::vector<std::pair<std::string, analysis::ecdf>> series;
    series.emplace_back("FB (Eq. 3)", analysis::ecdf(results[0].trace_rmsres()));
    for (std::size_t i = 1; i < results.size(); ++i) {
        series.emplace_back(results[i].name, analysis::ecdf(results[i].trace_rmsres()));
    }

    const std::vector<double> grid{0.1, 0.2, 0.4, 0.6, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0};
    print_cdf_table(series, grid, "RMSRE ->");

    std::printf("\nheadline:\n");
    for (const auto& [name, cdf] : series) {
        std::printf("  %-12s median RMSRE %.2f, 90th percentile %.2f, P(RMSRE<0.4) %.0f%%\n",
                    name.c_str(), cdf.quantile(0.5), cdf.quantile(0.9),
                    100.0 * cdf.at(0.4));
    }
    return 0;
}
