// Fig. 10 / §4.2.6: a-priori RTT T-hat versus the FB prediction error —
// the paper finds no positive correlation.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 10: FB prediction error versus the a-priori RTT T-hat",
           "no positive correlation between the prior RTT and the prediction error");

    const auto data = testbed::ensure_campaign1();
    const auto fb = analysis::evaluation_engine{}.run_one(data, "fb:pftk");

    struct bin {
        double lo_ms, hi_ms;
        std::vector<double> errors;
    };
    std::vector<bin> bins{{0, 25, {}},  {25, 50, {}},  {50, 75, {}},
                          {75, 110, {}}, {110, 170, {}}, {170, 400, {}}};
    std::vector<double> ts, errs;
    for (const auto& e : fb.all_epochs()) {
        const double t_ms = e.rec->m.that_s * 1e3;
        for (auto& b : bins) {
            if (t_ms >= b.lo_ms && t_ms < b.hi_ms) b.errors.push_back(e.error);
        }
        ts.push_back(t_ms);
        errs.push_back(e.error);
    }

    std::printf("%-20s %6s %9s %9s %9s\n", "T-hat bin (ms)", "n", "E p10", "E median",
                "E p90");
    for (const auto& b : bins) {
        if (b.errors.empty()) continue;
        std::printf("%6.0f .. %-10.0f %6zu %9.2f %9.2f %9.2f\n", b.lo_ms, b.hi_ms,
                    b.errors.size(), analysis::quantile(b.errors, 0.1),
                    analysis::median(b.errors), analysis::quantile(b.errors, 0.9));
    }
    std::printf("\nheadline: corr(T-hat, E) = %.2f (paper: no positive correlation)\n",
                analysis::pearson(ts, errs));
    return 0;
}
