// Fig. 5: CDF of the relative loss-rate increase (p-tilde - p-hat)/p-tilde
// during the target flow, over epochs that were lossy before the transfer.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 5: CDF of relative loss-rate increase during the target flow (lossy epochs)",
           "more than 70% of lossy epochs see a relative increase above 1.25/2.25 = 0.55 "
           "(i.e. p-tilde > 2.25 p-hat), contributing >50% to the prediction error");

    const auto data = testbed::ensure_campaign1();
    std::vector<double> rel;
    for (const auto& r : data.records) {
        if (r.m.phat > 0 && r.m.ptilde > 0) {
            rel.push_back((r.m.ptilde - r.m.phat) / r.m.ptilde);
        }
    }

    const std::vector<double> grid{-1.0, -0.5, -0.2, 0, 0.2, 0.4, 0.55, 0.7, 0.85, 0.95};
    const std::vector<std::pair<std::string, analysis::ecdf>> series{
        {"relative loss increase", analysis::ecdf(rel)}};
    print_cdf_table(series, grid, "(p~ - p^)/p~ ->");

    std::printf("\nheadline: n=%zu lossy epochs\n", rel.size());
    std::printf("  fraction with p-tilde > 2.25 p-hat: %.0f%% (paper >70%%)\n",
                100.0 * fraction(rel, [](double x) { return x > 1.25 / 2.25; }));
    return 0;
}
