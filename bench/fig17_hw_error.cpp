// Fig. 17 / §6.1.1: CDF over traces of the Holt-Winters predictors' RMSRE,
// with and without LSO (EWMA shown for comparison; the paper notes it
// behaves like HW).
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 17: per-trace RMSRE CDF for Holt-Winters predictors",
           "alpha = 0.8 is near-optimal; LSO significantly improves HW; HW-LSO is "
           "slightly better than MA-LSO overall; EWMA performs like HW");

    const auto data = testbed::ensure_campaign1();

    const auto results = run_predictors(
        data, {"0.2-HW", "0.5-HW", "0.8-HW", "0.2-HW-LSO", "0.5-HW-LSO", "0.8-HW-LSO",
               "0.8-EWMA", "10-MA-LSO"});
    const auto series = rmsre_cdf_series(results);

    const auto grid = rmsre_grid();
    print_cdf_table(series, grid, "RMSRE ->");

    std::printf("\nheadline (median per-trace RMSRE):\n");
    for (const auto& [name, cdf] : series) {
        std::printf("  %-12s %.3f\n", name.c_str(), cdf.quantile(0.5));
    }
    return 0;
}
