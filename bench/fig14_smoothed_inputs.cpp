// Fig. 14 / §4.2.10: FB prediction with MA(10)-smoothed RTT and loss-rate
// inputs versus the raw most-recent measurements.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 14: FB error CDF with history-smoothed RTT/loss inputs",
           "smoothing p-hat and T-hat with a 10-sample moving average changes almost "
           "nothing: input measurement noise is not a significant FB error source");

    const auto data = testbed::ensure_campaign1();

    analysis::engine_options smoothed;
    smoothed.smooth_inputs = true;

    const auto raw_err =
        analysis::evaluation_engine{}.run_one(data, "fb:pftk").epoch_errors();
    const auto smooth_err =
        analysis::evaluation_engine{smoothed}.run_one(data, "fb:pftk").epoch_errors();

    const auto grid = error_grid();
    const std::vector<std::pair<std::string, analysis::ecdf>> series{
        {"raw (latest) inputs", analysis::ecdf(raw_err)},
        {"MA(10)-smoothed inputs", analysis::ecdf(smooth_err)},
    };
    print_cdf_table(series, grid, "E ->");

    std::printf("\nheadline: median E raw %.2f vs smoothed %.2f; |E|>=1 raw %.0f%% vs "
                "smoothed %.0f%% (paper: the two CDFs nearly coincide)\n",
                analysis::median(raw_err), analysis::median(smooth_err),
                100.0 * fraction(raw_err, [](double e) { return std::abs(e) >= 1; }),
                100.0 * fraction(smooth_err, [](double e) { return std::abs(e) >= 1; }));
    return 0;
}
