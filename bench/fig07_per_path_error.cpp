// Fig. 7 / §4.2.4: per-path distribution (10th percentile, median, 90th
// percentile) of the FB prediction error — different paths have widely
// different predictability.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 7: per-path median and 10/90th percentile of FB error E",
           "most paths mainly overestimate; ~10 of 35 paths have much larger errors and "
           "wider ranges (up to E=10+); a handful mostly underestimate mildly");

    const auto data = testbed::ensure_campaign1();
    const auto fb = analysis::evaluation_engine{}.run_one(data, "fb:pftk");
    auto summaries = analysis::error_per_path(fb);
    std::sort(summaries.begin(), summaries.end(),
              [](const auto& a, const auto& b) { return a.median < b.median; });

    std::printf("%-10s %-6s %9s %9s %9s %6s\n", "path", "class", "E p10", "E median",
                "E p90", "n");
    int wide = 0, mostly_under = 0;
    for (const auto& s : summaries) {
        const auto& prof = data.profile(s.path_id);
        std::printf("%-10s %-6s %9.2f %9.2f %9.2f %6zu\n", prof.name.c_str(),
                    std::string(testbed::to_string(prof.klass)).c_str(), s.p10, s.median,
                    s.p90, s.samples);
        if (s.p90 - s.p10 > 4.0 || s.p90 > 5.0) ++wide;
        if (s.median < 0) ++mostly_under;
    }
    std::printf("\nheadline: %d/%zu paths with large/wide errors (paper ~10/35); "
                "%d paths mostly underestimate (paper ~4-5)\n",
                wide, summaries.size(), mostly_under);
    return 0;
}
