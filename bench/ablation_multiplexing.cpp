// §6.1.4 ablation: the queueing-model claims the paper could NOT verify on
// RON because bottleneck internals were unobservable — our simulator can.
//  1. prediction error (and throughput CoV) increases with bottleneck
//     utilization;
//  2. at fixed utilization, it decreases with the degree of statistical
//     multiplexing (number of competing flows).
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "testbed/epoch_runner.hpp"
#include "testbed/path_catalog.hpp"

using namespace tcppred;
using namespace tcppred::testbed;
using namespace tcppred::bench;

namespace {

double throughput_cov(const path_profile& base, double utilization, int elastic,
                      double burstiness, int epochs) {
    path_profile p = base;
    p.burstiness = burstiness;
    load_state load;
    load.utilization = utilization;
    load.elastic_flows = elastic;
    epoch_config cfg;
    cfg.run_pathload = false;   // only the transfer matters here
    cfg.run_small_window = false;
    cfg.prior_ping.count = 50;
    cfg.transfer = core::seconds{8.0};
    std::vector<double> rs;
    for (int e = 0; e < epochs; ++e) {
        rs.push_back(run_epoch(p, load, 5000 + static_cast<std::uint64_t>(e), cfg)
                         .r_large_bps);
    }
    return analysis::cov(rs);
}

}  // namespace

int main() {
    banner("Ablation (s6.1.4): utilization and statistical multiplexing vs predictability",
           "predicted by the paper's queueing analysis but not verifiable on RON: "
           "(1) error grows with bottleneck utilization; (2) at fixed utilization, error "
           "shrinks with more competing flows (statistical multiplexing)");

    const auto paths = ron_like_catalog(35, 1);
    const path_profile& base = paths[10];
    const int epochs = 12;

    std::printf("claim 1: throughput CoV (~ HB error) vs utilization (single bursty source)\n");
    std::printf("  %-12s %s\n", "utilization", "CoV of R across epochs");
    for (const double u : {0.1, 0.3, 0.5, 0.7, 0.85}) {
        std::printf("  %-12.2f %.3f\n", u, throughput_cov(base, u, 0, 0.5, epochs));
    }

    std::printf("\nclaim 2: CoV at utilization 0.6, varying how many sources carry the\n");
    std::printf("  SAME load (burstiness fraction = single-source burst amplitude)\n");
    std::printf("  %-34s %s\n", "cross-traffic composition", "CoV of R");
    std::printf("  %-34s %.3f\n", "1 very bursty aggregate (b=0.8)",
                throughput_cov(base, 0.6, 2, 0.8, epochs));
    std::printf("  %-34s %.3f\n", "moderately multiplexed (b=0.4)",
                throughput_cov(base, 0.6, 2, 0.4, epochs));
    std::printf("  %-34s %.3f\n", "highly multiplexed (b=0.1, smooth)",
                throughput_cov(base, 0.6, 2, 0.1, epochs));
    std::printf("\n(lower CoV at the same utilization = higher predictability)\n");
    return 0;
}
