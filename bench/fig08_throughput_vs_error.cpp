// Fig. 8 / §4.2.4: relation between the actual throughput R of a transfer
// and the FB prediction error — large overestimation concentrates on
// low-throughput (congested) transfers.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 8: actual throughput R versus FB error E",
           "most large overestimation errors occur on transfers with very small "
           "throughput: 42% of samples with R <= 0.5 Mbps had E > 10, versus 0.2% for "
           "R >= 0.5 Mbps");

    const auto data = testbed::ensure_campaign1();
    const auto fb = analysis::evaluation_engine{}.run_one(data, "fb:pftk");

    struct bin {
        double lo, hi;
        std::vector<double> errors;
    };
    std::vector<bin> bins{{0, 0.25e6, {}},   {0.25e6, 0.5e6, {}}, {0.5e6, 1e6, {}},
                          {1e6, 2e6, {}},    {2e6, 4e6, {}},      {4e6, 8e6, {}},
                          {8e6, 1e12, {}}};
    std::vector<double> low_r, high_r;
    for (const auto& e : fb.all_epochs()) {
        for (auto& b : bins) {
            if (e.actual_bps >= b.lo && e.actual_bps < b.hi) b.errors.push_back(e.error);
        }
        (e.actual_bps <= 0.5e6 ? low_r : high_r).push_back(e.error);
    }

    std::printf("%-18s %6s %9s %9s %9s %10s\n", "R bin (Mbps)", "n", "E p10", "E median",
                "E p90", "P(E>5)");
    for (const auto& b : bins) {
        if (b.errors.empty()) continue;
        std::printf("%6.2f .. %-8.2f %6zu %9.2f %9.2f %9.2f %9.0f%%\n", b.lo / 1e6,
                    b.hi > 1e9 ? 99.0 : b.hi / 1e6, b.errors.size(),
                    analysis::quantile(b.errors, 0.1), analysis::median(b.errors),
                    analysis::quantile(b.errors, 0.9),
                    100.0 * fraction(b.errors, [](double e) { return e > 5; }));
    }

    std::printf("\nheadline: P(E > 5 | R <= 0.5 Mbps) = %.0f%%  vs  P(E > 5 | R > 0.5 Mbps) = %.1f%%\n",
                100.0 * fraction(low_r, [](double e) { return e > 5; }),
                100.0 * fraction(high_r, [](double e) { return e > 5; }));
    std::printf("(paper used the E > 10 threshold at its deeper congestion levels; the "
                "concentration of large errors on slow transfers is the reproduced shape)\n");
    return 0;
}
