// Fig. 18 / §6.1.1: sensitivity of the LSO heuristics to their parameters
// (gamma = level-shift threshold chi, psi = outlier threshold), shown as
// the CDF of |E| for 5-MA-LSO under a parameter grid.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 18: 5-MA-LSO under different chi (gamma) and psi values",
           "the LSO detection heuristics are not sensitive to chi and psi: the |E| CDFs "
           "nearly coincide for all tested combinations");

    const auto data = testbed::ensure_campaign1();

    const std::vector<std::pair<double, double>> params{
        {0.2, 0.3}, {0.3, 0.4}, {0.4, 0.5}, {0.3, 0.6}, {0.5, 0.4}};

    const std::vector<double> grid{0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0};
    std::vector<std::pair<std::string, analysis::ecdf>> series;
    for (const auto& [gamma, psi] : params) {
        analysis::engine_options opts;
        opts.predictor.lso = core::lso_config{gamma, psi, 3};
        const auto result = analysis::evaluation_engine{opts}.run_one(data, "5-MA-LSO");
        std::vector<double> abs_errors;
        for (const double e : result.epoch_errors()) abs_errors.push_back(std::abs(e));
        char label[48];
        std::snprintf(label, sizeof label, "chi=%.1f psi=%.1f", gamma, psi);
        series.emplace_back(label, analysis::ecdf(abs_errors));
    }
    print_cdf_table(series, grid, "|E| ->");

    std::printf("\nheadline: median |E| spread across the parameter grid: %.3f .. %.3f "
                "(paper: curves nearly coincide)\n",
                [&] {
                    double lo = 1e9;
                    for (const auto& [n, c] : series) lo = std::min(lo, c.quantile(0.5));
                    return lo;
                }(),
                [&] {
                    double hi = 0;
                    for (const auto& [n, c] : series) hi = std::max(hi, c.quantile(0.5));
                    return hi;
                }());
    return 0;
}
