// Fig. 4: CDF of the relative RTT increase (T-tilde - T-hat)/T-tilde
// during the target flow.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 4: CDF of relative RTT increase during the target flow",
           "for only ~20% of epochs the relative RTT increase exceeds 0.5 "
           "(i.e. T-tilde > 1.5 T-hat), contributing >50% to the prediction error");

    const auto data = testbed::ensure_campaign1();
    std::vector<double> rel;
    for (const auto& r : data.records) {
        if (r.m.ttilde_s > 0) rel.push_back((r.m.ttilde_s - r.m.that_s) / r.m.ttilde_s);
    }

    const std::vector<double> grid{-0.2, -0.05, 0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
    const std::vector<std::pair<std::string, analysis::ecdf>> series{
        {"relative RTT increase", analysis::ecdf(rel)}};
    print_cdf_table(series, grid, "(T~ - T^)/T~ ->");

    std::printf("\nheadline: fraction with relative increase > 0.5: %.0f%% (paper ~20%%)\n",
                100.0 * fraction(rel, [](double x) { return x > 0.5; }));
    return 0;
}
