// Fig. 6 / §4.2.3: FB prediction error if the during-flow (periodically
// probed) RTT and loss rate were known, versus the a-priori measurements —
// isolating the TCP-sampling-vs-periodic-probing error source.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

namespace {

// Restrict to epochs that are lossy in the respective input (the paper's
// Fig. 6 covers PFTK-based predictions).
std::vector<double> lossy_errors(const analysis::predictor_result& fb) {
    std::vector<double> errors;
    for (const auto& e : fb.all_epochs()) {
        if (e.source == core::prediction_source::model_based) errors.push_back(e.error);
    }
    return errors;
}

}  // namespace

int main() {
    banner("Fig. 6: FB error with during-flow (T~, p~) vs prior (T^, p^) estimates",
           "knowing the during-flow probe view makes errors smaller and symmetric "
           "(-3 < E < 3 for ~80%), but over half the predictions are still off by >2x: "
           "periodic probing does not sample the path the way TCP does");

    const auto data = testbed::ensure_campaign1();

    analysis::engine_options during_opts;
    during_opts.use_during_flow = true;

    const auto prior_err =
        lossy_errors(analysis::evaluation_engine{}.run_one(data, "fb:pftk"));
    const auto during_err =
        lossy_errors(analysis::evaluation_engine{during_opts}.run_one(data, "fb:pftk"));

    const auto grid = error_grid();
    const std::vector<std::pair<std::string, analysis::ecdf>> series{
        {"prior (T^, p^)", analysis::ecdf(prior_err)},
        {"during flow (T~, p~)", analysis::ecdf(during_err)},
    };
    print_cdf_table(series, grid, "E ->");

    std::printf("\nheadline:\n");
    std::printf("  prior:  |E| >= 1: %.0f%%, overestimation share %.0f%%\n",
                100.0 * fraction(prior_err, [](double e) { return std::abs(e) >= 1; }),
                100.0 * fraction(prior_err, [](double e) { return e > 0; }));
    std::printf("  during: |E| >= 1: %.0f%%, overestimation share %.0f%% (should be nearer 50%%)\n",
                100.0 * fraction(during_err, [](double e) { return std::abs(e) >= 1; }),
                100.0 * fraction(during_err, [](double e) { return e > 0; }));
    return 0;
}
