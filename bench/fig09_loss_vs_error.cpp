// Fig. 9 / §4.2.5: a-priori loss rate p-hat versus the FB prediction error
// — the paper finds no positive correlation.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 9: FB prediction error versus the a-priori loss rate p-hat (lossy epochs)",
           "the prediction error is NOT correlated with the a-priori path loss rate");

    const auto data = testbed::ensure_campaign1();
    const auto fb = analysis::evaluation_engine{}.run_one(data, "fb:pftk");

    struct bin {
        double lo, hi;
        std::vector<double> errors;
    };
    std::vector<bin> bins{{0, 0.001, {}},  {0.001, 0.002, {}}, {0.002, 0.005, {}},
                          {0.005, 0.01, {}}, {0.01, 0.02, {}},   {0.02, 1.0, {}}};
    std::vector<double> ps, errs;
    for (const auto& e : fb.all_epochs()) {
        const double p = e.rec->m.phat;
        if (p <= 0) continue;
        for (auto& b : bins) {
            if (p >= b.lo && p < b.hi) b.errors.push_back(e.error);
        }
        ps.push_back(p);
        errs.push_back(e.error);
    }

    std::printf("%-20s %6s %9s %9s %9s\n", "p-hat bin", "n", "E p10", "E median", "E p90");
    for (const auto& b : bins) {
        if (b.errors.empty()) continue;
        std::printf("%8.3f .. %-8.3f %6zu %9.2f %9.2f %9.2f\n", b.lo, b.hi,
                    b.errors.size(), analysis::quantile(b.errors, 0.1),
                    analysis::median(b.errors), analysis::quantile(b.errors, 0.9));
    }
    std::printf("\nheadline: corr(p-hat, E) = %.2f (paper: no positive correlation)\n",
                analysis::pearson(ps, errs));
    return 0;
}
