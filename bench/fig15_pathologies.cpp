// Fig. 15: example traces with level shifts, trends and outliers, and the
// per-predictor RMSRE bars (MA with n in {2,5,10,20}, EWMA/HW with alpha in
// {0.2,0.5,0.8}, each with and without LSO).
#include <cstdio>
#include <vector>

#include "analysis/evaluation.hpp"
#include "bench_util.hpp"
#include "core/predictor_registry.hpp"
#include "sim/rng.hpp"

using namespace tcppred;
using namespace tcppred::bench;

namespace {

std::vector<double> noisy(sim::rng& r, double level, int n, double sigma = 0.04) {
    std::vector<double> out;
    for (int i = 0; i < n; ++i) out.push_back(level * (1.0 + r.normal(0.0, sigma)));
    return out;
}

void append(std::vector<double>& dst, const std::vector<double>& src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

void show_trace(const char* name, const std::vector<double>& trace) {
    std::printf("trace (%s), Mbps:", name);
    for (std::size_t i = 0; i < trace.size(); i += 5) std::printf(" %.1f", trace[i] / 1e6);
    std::printf("\n%-10s", "");
    const std::vector<const char*> specs{"2-MA",      "5-MA",      "10-MA",     "20-MA",
                                         "2-MA-LSO",  "5-MA-LSO",  "10-MA-LSO", "20-MA-LSO",
                                         "0.2-EWMA",  "0.5-EWMA",  "0.8-EWMA",  "0.2-HW",
                                         "0.5-HW",    "0.8-HW",    "0.2-HW-LSO", "0.5-HW-LSO",
                                         "0.8-HW-LSO"};
    for (const char* s : specs) std::printf(" %10s", s);
    std::printf("\n%-10s", "RMSRE");
    for (const char* s : specs) {
        const auto pred = core::make_predictor(s);
        std::printf(" %10.3f", analysis::evaluate_series(trace, *pred).rmsre);
    }
    std::printf("\n\n");
}

}  // namespace

int main() {
    banner("Fig. 15: throughput pathologies (level shift / trend / outliers) and the "
           "RMSRE of each predictor",
           "without LSO the predictor and its parameters matter a lot around shifts and "
           "outliers; LSO cuts the error sharply and flattens the sensitivity to n and "
           "alpha; HW-LSO is about the best overall");

    sim::rng r(7);

    // (a) a single large level shift.
    std::vector<double> shift = noisy(r, 5e6, 60);
    append(shift, noisy(r, 30e6, 90));
    show_trace("a: level shift", shift);

    // (b) trend, then a level shift, plus outliers.
    std::vector<double> trend;
    for (int i = 0; i < 70; ++i) trend.push_back((10e6 + i * 0.15e6) * (1.0 + r.normal(0, 0.04)));
    append(trend, noisy(r, 9e6, 80));
    trend[25] = 40e6;
    trend[100] = 1.5e6;
    show_trace("b: trend + shift + outliers", trend);

    // (c) level shift plus outliers.
    std::vector<double> mixed = noisy(r, 20e6, 75);
    append(mixed, noisy(r, 8e6, 75));
    mixed[30] = 2e6;
    mixed[55] = 55e6;
    mixed[110] = 35e6;
    show_trace("c: shift + outliers", mixed);

    return 0;
}
