// Fig. 2: CDF of the FB relative prediction error E for all predictions,
// for lossy-path (PFTK) predictions, and for lossless-path (avail-bw)
// predictions.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 2: CDF of E for all / lossy / lossless FB predictions",
           "~40% of predictions overestimate by more than 2x (E>=1); ~10% by more than "
           "10x (E>=9); only ~8% underestimate by more than 2x; lossless (avail-bw) "
           "predictions rarely underestimate and overestimate less");

    const auto data = testbed::ensure_campaign1();
    const auto fb = analysis::evaluation_engine{}.run_one(data, "fb:pftk");

    std::vector<double> all, lossy, lossless;
    for (const auto& e : fb.all_epochs()) {
        all.push_back(e.error);
        if (e.source == core::prediction_source::model_based) {
            lossy.push_back(e.error);
        } else {
            lossless.push_back(e.error);
        }
    }

    const auto grid = error_grid();
    const std::vector<std::pair<std::string, analysis::ecdf>> series{
        {"all predictions", analysis::ecdf(all)},
        {"lossy paths (PFTK)", analysis::ecdf(lossy)},
        {"lossless paths (A-hat)", analysis::ecdf(lossless)},
    };
    print_cdf_table(series, grid, "E ->");

    std::printf("\nheadline: n=%zu (lossy %zu / lossless %zu)\n", all.size(), lossy.size(),
                lossless.size());
    std::printf("  overestimation (E>0):            %.0f%%\n",
                100.0 * fraction(all, [](double e) { return e > 0; }));
    std::printf("  overestimate by >2x  (E>=1):     %.0f%%\n",
                100.0 * fraction(all, [](double e) { return e >= 1; }));
    std::printf("  overestimate by >10x (E>=9):     %.0f%%\n",
                100.0 * fraction(all, [](double e) { return e >= 9; }));
    std::printf("  underestimate by >2x (E<=-1):    %.0f%%\n",
                100.0 * fraction(all, [](double e) { return e <= -1; }));
    std::printf("  lossless underestimates (E<=-1): %.0f%%\n",
                100.0 * fraction(lossless, [](double e) { return e <= -1; }));
    return 0;
}
