// §3.3 ablation: how different are (a) the periodic-probe loss rate,
// (b) TCP's own packet loss rate, and (c) TCP's congestion-event
// probability p'? The paper's ns2 simulations found ping-based estimates
// up to an order of magnitude away from the congestion-event probability.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "core/fb_formulas.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Ablation (s3.3): periodic probing vs TCP sampling of the loss process",
           "a ping-based loss estimate can be an order of magnitude away from the "
           "congestion-event probability p' that PFTK actually wants; the unconditional "
           "TCP loss rate sits in between (drop-tail losses are bursty)");

    const auto data = testbed::ensure_campaign1();

    std::vector<double> ping_prior, ping_during, tcp_loss, tcp_events, implied;
    std::vector<double> r_ping_event, r_loss_event;
    core::tcp_flow_params flow;
    for (const auto& r : data.records) {
        const auto& m = r.m;
        if (m.tcp_event_rate <= 0 || m.r_large_bps <= 0) continue;
        ping_prior.push_back(m.phat);
        ping_during.push_back(m.ptilde);
        tcp_loss.push_back(m.tcp_loss_rate);
        tcp_events.push_back(m.tcp_event_rate);
        // p' implied by inverting PFTK on the achieved rate.
        implied.push_back(
            core::pftk_implied_loss(
                flow,
                core::seconds{m.tcp_mean_rtt_s > 0 ? m.tcp_mean_rtt_s : m.that_s},
                core::seconds{1.0}, core::bits_per_second{m.r_large_bps})
                .value());
        if (m.tcp_event_rate > 0) {
            r_ping_event.push_back(m.ptilde / m.tcp_event_rate);
            r_loss_event.push_back(m.tcp_loss_rate / m.tcp_event_rate);
        }
    }

    auto stats = [](const char* name, const std::vector<double>& v) {
        std::printf("  %-34s median %.5f  p90 %.5f  (n=%zu)\n", name,
                    analysis::median(v), analysis::quantile(v, 0.9), v.size());
    };
    std::printf("loss-process views during the target transfer:\n");
    stats("ping before flow (p-hat)", ping_prior);
    stats("ping during flow (p-tilde)", ping_during);
    stats("TCP packet loss (retx/sent)", tcp_loss);
    stats("TCP congestion events / segment", tcp_events);
    stats("p' implied by PFTK from achieved R", implied);

    std::printf("\nratios per epoch (lossy transfers):\n");
    std::printf("  ping-during / congestion-event rate: median %.2f (p10 %.2f, p90 %.2f)\n",
                analysis::median(r_ping_event), analysis::quantile(r_ping_event, 0.1),
                analysis::quantile(r_ping_event, 0.9));
    std::printf("  TCP loss rate / congestion-event rate: median %.2f (burst factor: "
                "several drops per event)\n",
                analysis::median(r_loss_event));
    return 0;
}
