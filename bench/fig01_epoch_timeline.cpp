// Fig. 1: the measurement epoch timeline. Runs one instrumented epoch and
// prints the phase schedule, validating the avail-bw -> ping -> transfer
// (with concurrent pinging) -> window-limited-transfer methodology.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/epoch_runner.hpp"
#include "testbed/path_catalog.hpp"

using namespace tcppred;
using namespace tcppred::testbed;

int main() {
    bench::banner("Fig. 1: structure of a measurement epoch",
                  "each epoch = pathload avail-bw measurement, then a periodic probing "
                  "session (p-hat, T-hat), then the bulk target transfer with concurrent "
                  "probing (R, p-tilde, T-tilde), then the W=20KB companion transfer");

    const auto paths = ron_like_catalog(35, 1);
    const path_profile& p = paths[10];
    load_state load;
    load.utilization = p.base_utilization;
    load.elastic_flows = p.elastic_flows;

    epoch_config cfg;
    const epoch_measurement m = run_epoch(p, load, 42, cfg);

    std::printf("path %s: bottleneck %.2f Mbps, base RTT %.1f ms, buffer %zu pkts\n\n",
                p.name.c_str(), p.bottleneck_capacity().value() / 1e6,
                p.base_rtt().value() * 1e3,
                p.forward[p.bottleneck].buffer_packets);
    std::printf("phase plan (simulated seconds):\n");
    std::printf("  [0.0 .. %.1f]  cross-traffic warmup\n", cfg.warmup.value());
    std::printf("  then          pathload avail-bw estimation     -> A-hat = %.2f Mbps\n",
                m.avail_bw_bps / 1e6);
    std::printf("  then          %llu probes @ %.0f ms              -> p-hat = %.4f, T-hat = %.1f ms\n",
                static_cast<unsigned long long>(cfg.prior_ping.count),
                cfg.prior_ping.interval.value() * 1e3, m.phat, m.that_s * 1e3);
    std::printf("  then          %.0f s bulk transfer (W = 1 MB)    -> R = %.2f Mbps\n",
                cfg.transfer.value(), m.r_large_bps / 1e6);
    std::printf("                ... with concurrent probing       -> p-tilde = %.4f, T-tilde = %.1f ms\n",
                m.ptilde, m.ttilde_s * 1e3);
    std::printf("  then          %.0f s companion transfer (W=20KB) -> R = %.2f Mbps\n",
                cfg.transfer.value(), m.r_small_bps / 1e6);
    std::printf("\nepoch simulated time: %.1f s, events: %llu\n", m.sim_time_s,
                static_cast<unsigned long long>(m.events));
    std::printf("(paper timeline: 60 s ping + 50 s transfer per epoch; this build keeps\n"
                " the sample counts comparable and compresses wall-clock, see DESIGN.md)\n");
    return 0;
}
