// Fig. 13 / §4.2.9: FB error CDF with the revised (full) PFTK model versus
// the original Eq. 2 approximation — plus the square-root model as an extra
// ablation series.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 13: FB error CDF with the revised PFTK formula",
           "the difference between the original and the revised PFTK predictors is "
           "negligible compared to the overall FB errors");

    const auto data = testbed::ensure_campaign1();

    const auto results =
        run_predictors(data, {"fb:pftk", "fb:pftk-full", "fb:sqrt"});
    const auto original = results[0].epoch_errors();
    const auto revised = results[1].epoch_errors();
    const auto sqrt_model = results[2].epoch_errors();

    const auto grid = error_grid();
    const std::vector<std::pair<std::string, analysis::ecdf>> series{
        {"PFTK (Eq. 2)", analysis::ecdf(original)},
        {"revised PFTK (full)", analysis::ecdf(revised)},
        {"square-root (Eq. 1)", analysis::ecdf(sqrt_model)},
    };
    print_cdf_table(series, grid, "E ->");

    std::printf("\nheadline: median E original %.2f vs revised %.2f vs square-root %.2f\n",
                analysis::median(original), analysis::median(revised),
                analysis::median(sqrt_model));
    std::printf("  |E|>=1: original %.0f%%, revised %.0f%% (paper: negligible difference)\n",
                100.0 * fraction(original, [](double e) { return std::abs(e) >= 1; }),
                100.0 * fraction(revised, [](double e) { return std::abs(e) >= 1; }));
    return 0;
}
