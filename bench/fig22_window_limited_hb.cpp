// Fig. 22 / §6.1.5: HB prediction error for window-limited (W = 20 KB)
// versus congestion-limited (W = 1 MB) transfers.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 22: HB RMSRE, window-limited vs congestion-limited flows",
           "window-limited flows have lower RMSRE (throughput is more predictable when "
           "the flow does not try to saturate the path), though the gap shrinks when the "
           "congestion-limited RMSRE is already ~0.1");

    const auto data = testbed::ensure_campaign1();

    analysis::engine_options small_opts;
    small_opts.small_window = true;

    const auto large = analysis::evaluation_engine{}.run_one(data, "0.8-HW-LSO");
    const auto small = analysis::evaluation_engine{small_opts}.run_one(data, "0.8-HW-LSO");

    std::map<std::pair<int, int>, double> small_by_trace;
    for (const auto& t : small.traces) small_by_trace[{t.path_id, t.trace_id}] = t.rmsre;

    std::printf("%-8s %-6s %14s %14s\n", "path", "trace", "RMSRE W=1MB", "RMSRE W=20KB");
    int better = 0, total = 0;
    std::vector<double> l_all, s_all;
    for (const auto& t : large.traces) {
        const double s = small_by_trace[{t.path_id, t.trace_id}];
        std::printf("%-8d %-6d %14.3f %14.3f\n", t.path_id, t.trace_id, t.rmsre, s);
        ++total;
        if (s < t.rmsre) ++better;
        l_all.push_back(t.rmsre);
        s_all.push_back(s);
    }
    std::printf("\nheadline: window-limited RMSRE lower on %d/%d traces; medians "
                "%.3f (W=1MB) vs %.3f (W=20KB)\n",
                better, total, analysis::median(l_all), analysis::median(s_all));
    return 0;
}
