// Goyal et al. extension (§2): feed PFTK the congestion-EVENT rate
// (consecutive probe losses collapsed) instead of the raw probe loss rate,
// and quantify how much of the FB error that correction recovers.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

namespace {

// The paper's comparison covers PFTK-based (lossy-branch) predictions.
std::vector<double> lossy_errors(const analysis::predictor_result& fb) {
    std::vector<double> errors;
    for (const auto& e : fb.all_epochs()) {
        if (e.source == core::prediction_source::model_based) errors.push_back(e.error);
    }
    return errors;
}

}  // namespace

int main() {
    banner("Ablation (Goyal et al.): PFTK on loss-event rate p' vs raw loss rate p",
           "the PFTK parameter should be the congestion-event probability; collapsing "
           "bursty probe losses into events moves the estimate toward p' and should "
           "reduce the PFTK underestimation on burst-lossy paths — but cannot fix the "
           "dominant self-induced-congestion error");

    const auto data = testbed::ensure_campaign1();

    analysis::engine_options events;
    events.use_event_loss = true;

    const auto raw_err =
        lossy_errors(analysis::evaluation_engine{}.run_one(data, "fb:pftk"));
    const auto event_err =
        lossy_errors(analysis::evaluation_engine{events}.run_one(data, "fb:pftk"));

    const auto grid = error_grid();
    const std::vector<std::pair<std::string, analysis::ecdf>> series{
        {"raw loss rate p-hat", analysis::ecdf(raw_err)},
        {"event rate p'-hat", analysis::ecdf(event_err)},
    };
    print_cdf_table(series, grid, "E ->");

    // How different are the two inputs themselves?
    std::vector<double> burst_factor;
    for (const auto& r : data.records) {
        if (r.m.phat_events > 0) burst_factor.push_back(r.m.phat / r.m.phat_events);
    }
    std::printf("\nheadline: probe-loss burst factor p/p' median %.2f (p90 %.2f); "
                "median E raw %.2f vs events %.2f; |E|>=1 raw %.0f%% vs events %.0f%%\n",
                analysis::median(burst_factor), analysis::quantile(burst_factor, 0.9),
                analysis::median(raw_err), analysis::median(event_err),
                100.0 * fraction(raw_err, [](double e) { return std::abs(e) >= 1; }),
                100.0 * fraction(event_err, [](double e) { return std::abs(e) >= 1; }));
    return 0;
}
