// Fig. 12 / §4.2.8: FB RMSRE per path for window-limited (W = 20 KB)
// versus congestion-limited (W = 1 MB) transfers.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/metrics.hpp"
#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 12: FB RMSRE, window-limited (W=20KB) vs congestion-limited (W=1MB)",
           "on every window-limited path the W=20KB transfers predict better, often by a "
           "large factor; 14 of 19 window-limited paths reach RMSRE < 1.0");

    const auto data = testbed::ensure_campaign1();

    analysis::engine_options small_opts;
    small_opts.small_window = true;
    small_opts.predictor.window_bytes = 20 * 1024;

    const auto large = analysis::evaluation_engine{}.run_one(data, "fb:pftk");
    const auto small = analysis::evaluation_engine{small_opts}.run_one(data, "fb:pftk");

    // Per-path RMSRE for both variants.
    std::map<int, std::vector<double>> large_err, small_err;
    for (const auto& e : large.all_epochs()) large_err[e.rec->path_id].push_back(e.error);
    for (const auto& e : small.all_epochs()) small_err[e.rec->path_id].push_back(e.error);

    // A path is window-limited when W/T-hat < A-hat on (most of) its epochs.
    std::map<int, int> wl_votes, votes;
    for (const auto& r : data.records) {
        const double w_over_t = 20.0 * 1024 * 8 / std::max(r.m.that_s, 1e-6);
        ++votes[r.path_id];
        if (r.m.avail_bw_bps > w_over_t) ++wl_votes[r.path_id];
    }

    std::printf("%-10s %-6s %12s %12s %8s %s\n", "path", "class", "RMSRE W=1MB",
                "RMSRE W=20KB", "ratio", "window-limited?");
    int wl_paths = 0, wl_below_1 = 0, wl_better = 0;
    for (const auto& [path, errs] : large_err) {
        const double r_large = core::rmsre(errs);
        const double r_small = core::rmsre(small_err[path]);
        const bool window_limited = wl_votes[path] * 2 > votes[path];
        const auto& prof = data.profile(path);
        std::printf("%-10s %-6s %12.3f %12.3f %8.2f %s\n", prof.name.c_str(),
                    std::string(testbed::to_string(prof.klass)).c_str(), r_large, r_small,
                    r_small > 0 ? r_large / r_small : 0.0, window_limited ? "yes" : "no");
        if (window_limited) {
            ++wl_paths;
            if (r_small < 1.0) ++wl_below_1;
            if (r_small < r_large) ++wl_better;
        }
    }
    std::printf("\nheadline: %d window-limited paths (paper: 19/35); window-limited "
                "RMSRE lower on %d of them; RMSRE < 1.0 on %d (paper: 14/19)\n",
                wl_paths, wl_better, wl_below_1);
    return 0;
}
