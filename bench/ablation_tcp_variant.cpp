// TCP-variant ablation: the paper's FB models assume Reno ("FB prediction
// has to use a different throughput model for each variant of TCP", §1),
// while HB prediction is implementation-agnostic. This bench quantifies
// both claims on the simulator: how much the achieved throughput differs
// across Tahoe / NewReno / SACK under identical conditions, and how the
// PFTK prediction error shifts per variant.
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "core/fb_formulas.hpp"
#include "core/metrics.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

using namespace tcppred;
using namespace tcppred::bench;

namespace {

struct outcome {
    double goodput_bps;
    double loss_rate;
    double event_rate;
    double mean_rtt;
    std::uint64_t timeouts;
};

outcome run(tcp::tcp_variant variant, double cap, double rtt, std::size_t buffer,
            double cross_load, std::uint64_t seed) {
    sim::scheduler sched;
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{cap}, core::seconds{rtt / 2}, buffer}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{100e6}, core::seconds{rtt / 2}, 512}};
    net::duplex_path path(sched, fwd, rev);
    net::poisson_source cross(sched, path, 0, 99, seed, cross_load * cap);
    cross.start();
    sched.run_until(1.0);

    net::path_conduit conduit(path);
    tcp::tcp_config cfg;
    cfg.variant = variant;
    cfg.initial_ssthresh_segments = 128;
    tcp::tcp_connection conn(sched, conduit, 1, cfg);
    const double t0 = sched.now();
    conn.start();
    sched.run_until(t0 + 15.0);
    conn.quiesce();
    cross.stop();

    const auto& st = conn.sender().stats();
    outcome o{};
    o.goodput_bps = static_cast<double>(conn.sender().acked_bytes()) * 8.0 / 15.0;
    o.loss_rate = st.segments_sent > 0 ? static_cast<double>(st.retransmits) /
                                             static_cast<double>(st.segments_sent)
                                       : 0.0;
    o.event_rate = st.segments_sent > 0 ? static_cast<double>(st.congestion_events()) /
                                              static_cast<double>(st.segments_sent)
                                        : 0.0;
    double rtt_sum = 0.0;
    for (const double s : st.rtt_samples) rtt_sum += s;
    o.mean_rtt = st.rtt_samples.empty()
                     ? rtt
                     : rtt_sum / static_cast<double>(st.rtt_samples.size());
    o.timeouts = st.timeouts;
    return o;
}

const char* name_of(tcp::tcp_variant v) {
    switch (v) {
        case tcp::tcp_variant::tahoe: return "Tahoe";
        case tcp::tcp_variant::newreno: return "NewReno";
        case tcp::tcp_variant::sack: return "SACK";
    }
    return "?";
}

}  // namespace

int main() {
    banner("Ablation: TCP variant (Tahoe / NewReno / SACK) vs throughput and PFTK fit",
           "FB models are variant-specific (PFTK models Reno); HB is agnostic. SACK "
           "recovers multi-loss windows without timeouts, Tahoe pays a slow start per "
           "loss event — variant choice shifts both R and the model's fit");

    core::tcp_flow_params flow;
    std::printf("scenario: 8 Mbps bottleneck, 60 ms RTT, 25-packet buffer, varying load\n\n");
    std::printf("%-10s %-9s %10s %10s %10s %10s %9s %12s\n", "load", "variant",
                "R (Mbps)", "loss", "events", "timeouts", "RTT(ms)", "PFTK E");
    for (const double load : {0.2, 0.5, 0.75}) {
        for (const auto v : {tcp::tcp_variant::tahoe, tcp::tcp_variant::newreno,
                             tcp::tcp_variant::sack}) {
            // Average over a few seeds.
            double r = 0, loss = 0, events = 0, rtt = 0;
            std::uint64_t to = 0;
            const int reps = 4;
            for (int i = 0; i < reps; ++i) {
                const outcome o =
                    run(v, 8e6, 0.060, 25, load, 1000 + static_cast<std::uint64_t>(i));
                r += o.goodput_bps;
                loss += o.loss_rate;
                events += o.event_rate;
                rtt += o.mean_rtt;
                to += o.timeouts;
            }
            r /= reps;
            loss /= reps;
            events /= reps;
            rtt /= reps;
            // PFTK fed TCP's own event rate and RTT ("posthumous" fit as in
            // the original PFTK validation).
            const double pftk =
                events > 0
                    ? core::pftk_throughput(flow, core::seconds{rtt},
                                            core::probability{events},
                                            core::seconds{1.0})
                          .value()
                    : flow.max_window.value() * 8.0 / rtt;
            std::printf("%-10.2f %-9s %10.2f %10.4f %10.4f %10llu %9.1f %+12.2f\n",
                        load, name_of(v), r / 1e6, loss, events,
                        static_cast<unsigned long long>(to), rtt * 1e3,
                        core::relative_error(pftk, r));
        }
    }
    std::printf("\n(PFTK E near 0 means the model fits that variant's achieved rate when "
                "given the true congestion-event rate and RTT; the paper's FB problem is "
                "that neither input is measurable before the flow)\n");
    return 0;
}
