// google-benchmark micro-benchmarks for the prediction library: unified
// predictor update/forecast cost and the LSO scan, demonstrating that
// history-based prediction is computationally free compared to the
// measurements that feed it. Predictors are built through the registry, so
// the numbers include the cost of the unified streaming interface that the
// evaluation engine and any serving front-end pay.
#include <benchmark/benchmark.h>

#include <vector>

#include "analysis/evaluation.hpp"
#include "core/fb_formulas.hpp"
#include "core/lso.hpp"
#include "core/predictor_registry.hpp"
#include "sim/rng.hpp"

using namespace tcppred;

namespace {

std::vector<double> synthetic_series(std::size_t n) {
    sim::rng r(42);
    std::vector<double> s;
    s.reserve(n);
    double level = 5e6;
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 60 == 59) level *= r.chance(0.5) ? 2.0 : 0.5;  // level shifts
        s.push_back(level * (1.0 + r.normal(0.0, 0.1)));
    }
    return s;
}

void bm_moving_average_observe(benchmark::State& state) {
    const auto series = synthetic_series(4096);
    const auto ma = core::make_predictor(std::to_string(state.range(0)) + "-MA");
    std::size_t i = 0;
    for (auto _ : state) {
        ma->observe(series[i++ & 4095]);
        benchmark::DoNotOptimize(ma->predict(core::epoch_inputs::absent()));
    }
}
BENCHMARK(bm_moving_average_observe)->Arg(5)->Arg(20);

void bm_holt_winters_observe(benchmark::State& state) {
    const auto series = synthetic_series(4096);
    const auto hw = core::make_predictor("0.8-HW");
    std::size_t i = 0;
    for (auto _ : state) {
        hw->observe(series[i++ & 4095]);
        benchmark::DoNotOptimize(hw->predict(core::epoch_inputs::absent()));
    }
}
BENCHMARK(bm_holt_winters_observe);

void bm_lso_predictor_step(benchmark::State& state) {
    // Full LSO step at a given history length (detection + refit).
    const auto series = synthetic_series(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const auto pred = core::make_predictor("0.8-HW-LSO");
        for (const double x : series) pred->observe(x);
        benchmark::DoNotOptimize(pred->predict(core::epoch_inputs::absent()));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_lso_predictor_step)->Arg(20)->Arg(150);

void bm_lso_scan_trace(benchmark::State& state) {
    const auto series = synthetic_series(150);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::lso_scan(series));
    }
}
BENCHMARK(bm_lso_scan_trace);

void bm_pftk_formula(benchmark::State& state) {
    const core::tcp_flow_params flow;
    double p = 1e-4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::pftk_throughput(
            flow, core::seconds{0.06}, core::probability{p}, core::seconds{1.0}));
        p = p < 0.4 ? p * 1.01 : 1e-4;
    }
}
BENCHMARK(bm_pftk_formula);

void bm_pftk_full_formula(benchmark::State& state) {
    const core::tcp_flow_params flow;
    double p = 1e-4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::pftk_full_throughput(
            flow, core::seconds{0.06}, core::probability{p}, core::seconds{1.0}));
        p = p < 0.4 ? p * 1.01 : 1e-4;
    }
}
BENCHMARK(bm_pftk_full_formula);

void bm_pftk_inversion(benchmark::State& state) {
    const core::tcp_flow_params flow;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::pftk_implied_loss(
            flow, core::seconds{0.06}, core::seconds{1.0}, core::bits_per_second{2e6}));
    }
}
BENCHMARK(bm_pftk_inversion);

void bm_evaluate_series_trace(benchmark::State& state) {
    const auto series = synthetic_series(150);
    const auto proto = core::make_predictor("0.8-HW-LSO");
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::evaluate_series(series, *proto));
    }
}
BENCHMARK(bm_evaluate_series_trace);

}  // namespace

BENCHMARK_MAIN();
