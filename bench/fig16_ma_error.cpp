// Fig. 16 / §6.1.1: CDF over traces of the Moving Average predictors'
// RMSRE, with and without LSO.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 16: per-trace RMSRE CDF for Moving Average predictors",
           "n-MA for n < 20 behave almost identically without LSO (1-MA worst); LSO "
           "significantly reduces the RMSRE and flattens the dependence on n");

    const auto data = testbed::ensure_campaign1();

    const auto results = run_predictors(
        data, {"1-MA", "5-MA", "10-MA", "20-MA", "5-MA-LSO", "10-MA-LSO", "20-MA-LSO"});
    const auto series = rmsre_cdf_series(results);

    const auto grid = rmsre_grid();
    print_cdf_table(series, grid, "RMSRE ->");

    std::printf("\nheadline (median per-trace RMSRE):\n");
    for (const auto& [name, cdf] : series) {
        std::printf("  %-12s %.3f\n", name.c_str(), cdf.quantile(0.5));
    }
    return 0;
}
