// Fig. 23 / §6.1.6: effect of the transfer period on HB accuracy —
// down-sample each trace to 2x/8x/15x longer periods (the paper's 6, 24
// and 45 minutes against its 3-minute epochs) and compare RMSRE CDFs.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 23: HW-LSO RMSRE with sporadic transfers (longer periods)",
           "accuracy degrades gracefully: with a 45-min period, 65% of traces stay below "
           "RMSRE 0.4 and the 90th percentile stays below 1.0");

    const auto data = testbed::ensure_campaign1();

    const std::vector<std::pair<std::size_t, const char*>> periods{
        {1, "3 min (every epoch)"},
        {2, "6 min (every 2nd)"},
        {8, "24 min (every 8th)"},
        {15, "45 min (every 15th)"}};

    std::vector<std::pair<std::string, analysis::ecdf>> series;
    for (const auto& [factor, label] : periods) {
        analysis::engine_options opts;
        opts.downsample = factor;
        const auto result = analysis::evaluation_engine{opts}.run_one(data, "0.8-HW-LSO");
        series.emplace_back(label, analysis::ecdf(result.trace_rmsres()));
    }

    const auto grid = rmsre_grid();
    print_cdf_table(series, grid, "RMSRE ->");

    std::printf("\nheadline:\n");
    for (const auto& [name, cdf] : series) {
        std::printf("  %-22s P(RMSRE<0.4) = %.0f%%, 90th percentile = %.2f\n",
                    name.c_str(), 100.0 * cdf.at(0.4), cdf.quantile(0.9));
    }
    return 0;
}
