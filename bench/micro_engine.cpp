// google-benchmark micro-benchmarks for the simulation substrate: event
// scheduling throughput, link forwarding, and end-to-end TCP simulation
// cost — what bounds the wall-clock of a measurement campaign.
#include <benchmark/benchmark.h>

#include <memory>

#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

using namespace tcppred;

namespace {

void bm_scheduler_throughput(benchmark::State& state) {
    for (auto _ : state) {
        sim::scheduler s;
        int fired = 0;
        std::function<void()> chain = [&] {
            if (++fired < 10000) s.schedule_in(0.001, chain);
        };
        s.schedule_in(0.001, chain);
        s.run_all();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(bm_scheduler_throughput);

void bm_link_forwarding(benchmark::State& state) {
    for (auto _ : state) {
        sim::scheduler s;
        net::link l(s, 1e9, 0.001, 4096);
        std::uint64_t delivered = 0;
        l.set_sink([&](net::packet) { ++delivered; });
        for (int i = 0; i < 4096; ++i) {
            net::packet p;
            p.flow = 1;
            p.size_bytes = 1500;
            l.enqueue(p);
        }
        s.run_all();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(bm_link_forwarding);

void bm_tcp_transfer_second(benchmark::State& state) {
    // Cost of simulating one second of a saturating TCP flow at 10 Mbps.
    for (auto _ : state) {
        sim::scheduler sched;
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{10e6}, core::seconds{0.020}, 100}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{0.020}, 512}};
        net::duplex_path path(sched, fwd, rev);
        net::path_conduit conduit(path);
        tcp::tcp_config cfg;
        cfg.initial_ssthresh_segments = 128;
        tcp::tcp_connection conn(sched, conduit, 1, cfg);
        conn.start();
        sched.run_until(1.0);
        conn.quiesce();
        benchmark::DoNotOptimize(conn.sender().acked_bytes());
    }
}
BENCHMARK(bm_tcp_transfer_second);

void bm_loaded_path_second(benchmark::State& state) {
    // One second of TCP + Poisson cross traffic: the campaign's hot loop.
    for (auto _ : state) {
        sim::scheduler sched;
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{10e6}, core::seconds{0.020}, 100}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{0.020}, 512}};
        net::duplex_path path(sched, fwd, rev);
        net::poisson_source cross(sched, path, 0, 99, 7, 5e6);
        cross.start();
        net::path_conduit conduit(path);
        tcp::tcp_config cfg;
        cfg.initial_ssthresh_segments = 128;
        tcp::tcp_connection conn(sched, conduit, 1, cfg);
        conn.start();
        sched.run_until(1.0);
        conn.quiesce();
        cross.stop();
        benchmark::DoNotOptimize(sched.fired());
    }
}
BENCHMARK(bm_loaded_path_second);

}  // namespace

BENCHMARK_MAIN();
