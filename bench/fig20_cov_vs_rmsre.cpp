// Fig. 20 / §6.1.3: per-trace coefficient of variation of the throughput
// series versus the HW-LSO RMSRE — the paper reports correlation 0.91.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 20: trace CoV versus HW-LSO RMSRE",
           "strong correlation (paper: 0.91) — to first order the HW-LSO prediction error "
           "of a trace equals the CoV of its throughput time series");

    const auto data = testbed::ensure_campaign1();
    const auto points = analysis::cov_vs_rmsre(data, "0.8-HW-LSO");

    std::printf("%-8s %-6s %10s %10s\n", "path", "trace", "CoV", "RMSRE");
    std::vector<double> covs, rmsres;
    for (const auto& p : points) {
        std::printf("%-8d %-6d %10.3f %10.3f\n", p.path_id, p.trace_id, p.cov, p.rmsre);
        covs.push_back(p.cov);
        rmsres.push_back(p.rmsre);
    }
    std::printf("\nheadline: corr(CoV, RMSRE) = %.2f over %zu traces (paper: 0.91); "
                "median CoV %.3f, median RMSRE %.3f\n",
                analysis::pearson(covs, rmsres), points.size(), analysis::median(covs),
                analysis::median(rmsres));
    return 0;
}
