// Fig. 3 + §4.2.2: CDFs of the absolute RTT and loss-rate increase during
// the target flow, and the mean inflation factors feeding the error
// decomposition.
#include <cstdio>

#include "bench_util.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Fig. 3: CDF of absolute RTT and loss-rate increase during the target flow",
           "~50% of epochs: no significant RTT increase; ~40%: +5..60 ms; ~10%: >100 ms. "
           "Loss rate increases by 0.1-2% in almost all epochs. On average RTT inflates "
           "~1.3x and loss ~5x, explaining most of the FB overestimation (s4.2.2)");

    const auto data = testbed::ensure_campaign1();

    std::vector<double> rtt_inc_ms, loss_inc, rtt_ratio, loss_ratio;
    for (const auto& r : data.records) {
        rtt_inc_ms.push_back((r.m.ttilde_s - r.m.that_s) * 1e3);
        loss_inc.push_back(r.m.ptilde - r.m.phat);
        if (r.m.that_s > 0) rtt_ratio.push_back(r.m.ttilde_s / r.m.that_s);
        if (r.m.phat > 0) loss_ratio.push_back(r.m.ptilde / r.m.phat);
    }

    const std::vector<double> ms_grid{-5, 0, 1, 2, 5, 10, 20, 60, 100, 200};
    const std::vector<std::pair<std::string, analysis::ecdf>> rtt_series{
        {"RTT increase (ms)", analysis::ecdf(rtt_inc_ms)}};
    print_cdf_table(rtt_series, ms_grid, "T-tilde - T-hat (ms) ->");

    const std::vector<double> p_grid{-0.005, 0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05};
    const std::vector<std::pair<std::string, analysis::ecdf>> loss_series{
        {"loss-rate increase", analysis::ecdf(loss_inc)}};
    std::printf("\n");
    print_cdf_table(loss_series, p_grid, "p-tilde - p-hat ->");

    std::printf("\nheadline (s4.2.2):\n");
    std::printf("  mean RTT inflation during flow:   x%.2f   (paper: ~x1.3)\n",
                analysis::mean(rtt_ratio));
    std::printf("  mean loss inflation (lossy only): x%.2f   (paper: ~x5)\n",
                analysis::mean(loss_ratio));
    std::printf("  epochs with loss increase > 0:    %.0f%%  (paper: almost all)\n",
                100.0 * fraction(loss_inc, [](double x) { return x > 1e-6; }));
    return 0;
}
