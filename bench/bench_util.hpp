// Shared helpers for the figure-reproduction benches: consistent table
// formatting and access to the cached measurement campaigns.
//
// Cache bootstrap: the first bench to call testbed::ensure_campaign1() /
// ensure_campaign2() runs the measurement campaign and caches the CSV under
// $REPRO_DATA_DIR (default data/); every later bench loads the cache. The
// bootstrap honors the full environment contract (README "Configuration"):
// $REPRO_SCALE sizes the sweep, $REPRO_JOBS parallelizes it (default: all
// cores), and the resulting CSV is byte-identical for any job count
// (DESIGN.md §6), so cached datasets are interchangeable across machines
// with different core counts.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/evaluation.hpp"
#include "analysis/stats.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"

namespace tcppred::bench {

/// Evaluate several registry specs (core::make_predictor) in one streaming
/// pass over the dataset — the shared entry point of every figure bench.
/// Honors the observability environment ($REPRO_TRACE, $REPRO_METRICS) so
/// any bench can be traced/timed without per-bench wiring.
inline std::vector<analysis::predictor_result> run_predictors(
    const testbed::dataset& data, const std::vector<std::string>& specs,
    const analysis::engine_options& opts = {}) {
    obs::init_from_env();
    const obs::stage_timer timer("bench.run_predictors");
    return analysis::evaluation_engine(opts).run(data, specs);
}

/// One (name, per-trace-RMSRE ecdf) series per predictor result, ready for
/// print_cdf_table — the RMSRE-CDF figures' shared boilerplate.
inline std::vector<std::pair<std::string, analysis::ecdf>> rmsre_cdf_series(
    const std::vector<analysis::predictor_result>& results) {
    std::vector<std::pair<std::string, analysis::ecdf>> series;
    series.reserve(results.size());
    for (const auto& r : results) {
        series.emplace_back(r.name, analysis::ecdf(r.trace_rmsres()));
    }
    return series;
}

/// Print the figure banner and, for the reader, the paper's qualitative
/// claim this bench is supposed to reproduce.
inline void banner(const std::string& title, const std::string& paper_claim) {
    // Every bench prints a banner first, which makes this the one place to
    // honor $REPRO_TRACE / $REPRO_METRICS regardless of which engine entry
    // point the bench uses.
    obs::init_from_env();
    std::printf("== %s ==\n", title.c_str());
    std::printf("paper: %s\n\n", paper_claim.c_str());
}

/// Print one CDF as rows "x  F(x)" on a fixed grid of x values.
inline void print_cdf_rows(const std::string& series_name,
                           const analysis::ecdf& cdf, std::span<const double> grid) {
    std::printf("%-22s", ("CDF(" + series_name + ")").c_str());
    for (const double x : grid) std::printf(" %8.3g", x);
    std::printf("\n%-22s", ("  n=" + std::to_string(cdf.size())).c_str());
    for (const double x : grid) std::printf(" %8.3f", cdf.at(x));
    std::printf("\n");
}

/// Print several CDFs on a shared grid: header row of x values, then one
/// row of F(x) per series.
inline void print_cdf_table(std::span<const std::pair<std::string, analysis::ecdf>> series,
                            std::span<const double> grid, const std::string& x_label) {
    std::printf("%-26s", x_label.c_str());
    for (const double x : grid) std::printf(" %7.3g", x);
    std::printf("\n");
    for (const auto& [name, cdf] : series) {
        std::printf("%-26s", name.c_str());
        for (const double x : grid) std::printf(" %7.3f", cdf.at(x));
        std::printf("\n");
    }
}

/// Grid helpers for common figure axes.
inline std::vector<double> error_grid() {
    return {-10, -5, -3, -2, -1, -0.5, -0.2, 0, 0.2, 0.5, 1, 2, 3, 5, 9, 20};
}

inline std::vector<double> rmsre_grid() {
    return {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 4.0};
}

/// Fraction of samples satisfying a predicate — for headline statistics.
template <typename Pred>
double fraction(std::span<const double> xs, Pred&& pred) {
    if (xs.empty()) return 0.0;
    std::size_t hits = 0;
    for (const double x : xs) {
        if (pred(x)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(xs.size());
}

}  // namespace tcppred::bench
