// Extension predictors versus the paper's set, over the same campaign:
//  * AR(p) — the ARIMA-class predictor the paper skipped for needing too
//    much history (§5, §7): does it actually beat the simple ones here?
//  * NWS-style adaptive selection — race the paper's predictors and always
//    use the currently-best one.
//  * hybrid FB+HB (§7 future work) — measured on cold-start regret: the
//    first transfers of every trace, where HB has little or no history.
#include <cmath>
#include <cstdio>

#include "analysis/fb_analysis.hpp"
#include "analysis/hb_analysis.hpp"
#include "bench_util.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/metrics.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Ablation: extension predictors (AR, adaptive selection, hybrid FB+HB)",
           "the paper conjectures ARIMA-class models need too much history to help "
           "(s5), and proposes hybrid FB+HB predictors as future work (s7)");

    const auto data = testbed::ensure_campaign1();

    std::printf("per-trace RMSRE (median / 90th percentile across traces):\n");
    std::printf("  %-14s %8s %8s\n", "predictor", "median", "p90");
    for (const char* spec :
         {"10-MA-LSO", "0.8-HW-LSO", "2-AR", "4-AR", "8-AR", "4-AR-LSO", "NWS"}) {
        const auto pred = analysis::make_predictor(spec);
        const auto rmsres =
            analysis::rmsre_of(analysis::hb_rmsre_per_trace(data, *pred));
        std::printf("  %-14s %8.3f %8.3f\n", spec, analysis::median(rmsres),
                    analysis::quantile(rmsres, 0.9));
    }

    // Hybrid cold start: score only the first `horizon` transfers of each
    // trace, comparing pure-HB, pure-FB and the hybrid.
    const std::size_t horizon = 5;
    core::tcp_flow_params flow;
    std::vector<double> hb_err, fb_err, hybrid_err;
    for (const auto& [key, recs] : data.traces()) {
        core::hybrid_predictor hybrid(analysis::make_predictor("0.8-HW-LSO"), 3.0);
        auto hb = analysis::make_predictor("0.8-HW-LSO");
        for (std::size_t i = 0; i < recs.size() && i < horizon; ++i) {
            const auto& m = recs[i]->m;
            if (m.that_s <= 0 || m.r_large_bps <= 0) continue;
            core::path_measurement meas{core::probability{m.phat},
                                        core::seconds{m.that_s},
                                        core::bits_per_second{m.avail_bw_bps}};
            const double fb = core::fb_predict(flow, meas).throughput.value();
            hybrid.set_formula_prediction(fb);

            fb_err.push_back(core::relative_error(fb, m.r_large_bps));
            const double hy = hybrid.predict();
            if (!std::isnan(hy)) {
                hybrid_err.push_back(core::relative_error(hy, m.r_large_bps));
            }
            const double hb_forecast = hb->predict();
            if (!std::isnan(hb_forecast)) {
                hb_err.push_back(core::relative_error(hb_forecast, m.r_large_bps));
            }
            hybrid.observe(m.r_large_bps);
            hb->observe(m.r_large_bps);
        }
    }
    std::printf("\ncold start (first %zu transfers of every trace), RMSRE:\n", horizon);
    std::printf("  %-22s %8.3f  (n=%zu; no forecast for the first sample)\n",
                "pure HB (HW-LSO)", core::rmsre(hb_err), hb_err.size());
    std::printf("  %-22s %8.3f  (n=%zu)\n", "pure FB (Eq. 3)", core::rmsre(fb_err),
                fb_err.size());
    std::printf("  %-22s %8.3f  (n=%zu; covers the first sample too)\n",
                "hybrid FB+HB (k=3)", core::rmsre(hybrid_err), hybrid_err.size());
    return 0;
}
