// Extension predictors versus the paper's set, over the same campaign:
//  * AR(p) — the ARIMA-class predictor the paper skipped for needing too
//    much history (§5, §7): does it actually beat the simple ones here?
//  * NWS-style adaptive selection — race the paper's predictors and always
//    use the currently-best one.
//  * hybrid FB+HB (§7 future work) — measured on cold-start regret: the
//    first transfers of every trace, where HB has little or no history.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/metrics.hpp"
#include "core/predictor_registry.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::bench;

int main() {
    banner("Ablation: extension predictors (AR, adaptive selection, hybrid FB+HB)",
           "the paper conjectures ARIMA-class models need too much history to help "
           "(s5), and proposes hybrid FB+HB predictors as future work (s7)");

    const auto data = testbed::ensure_campaign1();

    std::printf("per-trace RMSRE (median / 90th percentile across traces):\n");
    std::printf("  %-14s %8s %8s\n", "predictor", "median", "p90");
    const auto results = run_predictors(
        data, {"10-MA-LSO", "0.8-HW-LSO", "2-AR", "4-AR", "8-AR", "4-AR-LSO", "NWS"});
    for (const auto& result : results) {
        const auto rmsres = result.trace_rmsres();
        std::printf("  %-14s %8.3f %8.3f\n", result.name.c_str(),
                    analysis::median(rmsres), analysis::quantile(rmsres, 0.9));
    }

    // Hybrid cold start: score only the first `horizon` transfers of each
    // trace, comparing pure-HB, pure-FB and the hybrid. Every predictor is
    // driven through the same unified streaming interface.
    const std::size_t horizon = 5;
    std::vector<double> hb_err, fb_err, hybrid_err;
    for (const auto& [key, recs] : data.traces()) {
        const auto fb = core::make_predictor("fb:pftk");
        const auto hb = core::make_predictor("0.8-HW-LSO");
        const auto hybrid = core::make_predictor("hybrid:0.8-HW-LSO");
        for (std::size_t i = 0; i < recs.size() && i < horizon; ++i) {
            const auto& m = recs[i]->m;
            if (m.that_s <= 0 || m.r_large_bps <= 0) continue;
            const auto in = core::epoch_inputs::valid(
                core::path_measurement{core::probability{m.phat},
                                       core::seconds{m.that_s},
                                       core::bits_per_second{m.avail_bw_bps}});

            fb_err.push_back(
                core::relative_error(fb->predict(in).value_bps, m.r_large_bps));
            const auto hy = hybrid->predict(in);
            if (hy.usable()) {
                hybrid_err.push_back(core::relative_error(hy.value_bps, m.r_large_bps));
            }
            const auto hb_forecast = hb->predict(in);
            if (hb_forecast.usable()) {
                hb_err.push_back(
                    core::relative_error(hb_forecast.value_bps, m.r_large_bps));
            }
            hybrid->observe(m.r_large_bps);
            hb->observe(m.r_large_bps);
        }
    }
    std::printf("\ncold start (first %zu transfers of every trace), RMSRE:\n", horizon);
    std::printf("  %-22s %8.3f  (n=%zu; no forecast for the first sample)\n",
                "pure HB (HW-LSO)", core::rmsre(hb_err), hb_err.size());
    std::printf("  %-22s %8.3f  (n=%zu)\n", "pure FB (Eq. 3)", core::rmsre(fb_err),
                fb_err.size());
    std::printf("  %-22s %8.3f  (n=%zu; covers the first sample too)\n",
                "hybrid FB+HB (k=3)", core::rmsre(hybrid_err), hybrid_err.size());
    return 0;
}
